"""Serving rules (``V0xx``): config and report document hygiene.

Serving scenarios are committed as JSON next to the benchmark baselines
they produced, and CI replays them bit-for-bit — so a malformed config
is not a runtime inconvenience, it silently changes what the regression
gate is comparing.  V001–V008 check the raw ``repro.serve/v1`` config
*before* :class:`repro.serve.config.ServeConfig` ever constructs: the
format marker, tenant shape and arrival processes, pool/lease
arithmetic, registered algorithms, parseable fault specs within pool
range, and policy-knob sanity (an unreachable overload threshold, a
zero-retry config facing injected GPU failures).

V009–V010 check emitted ``repro.servereport/v1`` documents (``repro
serve --json``): the lifecycle counters must satisfy their conservation
identities (every arrival is admitted or shed, every admitted request
reaches exactly one terminal status), and when the per-request records
are embedded (``--requests``) the aggregate counters — completions,
batched followers, repair rounds, displacements, elastic resizes —
must equal what the records add up to.

The pack works on the plain mapping only — it never imports
:mod:`repro.serve` — so ``repro lint`` can classify foreign documents
without executing scenario code.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Mapping

from ..core.api import ALGORITHMS
from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []

SERVE_CONFIG_FORMAT = "repro.serve/v1"
SERVE_REPORT_FORMAT = "repro.servereport/v1"


def _num(value: Any) -> float | None:
    """The value as a float, or ``None`` when it is not a finite number."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if not math.isfinite(value):
        return None
    return float(value)


def _int(value: Any) -> int | None:
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


@rule(
    "V001",
    severity=Severity.ERROR,
    pack="serve",
    title="serving config must carry the serve format marker",
    requires=("serve_doc",),
    hint=f"the simulator only accepts documents with format "
    f"{SERVE_CONFIG_FORMAT!r}",
)
def check_format(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    fmt = doc.get("format")
    if fmt != SERVE_CONFIG_FORMAT:
        yield Finding(
            f"format is {fmt!r}, expected {SERVE_CONFIG_FORMAT!r}",
            location="format",
        )


@rule(
    "V002",
    severity=Severity.ERROR,
    pack="serve",
    title="tenants must be a non-empty list with unique names",
    requires=("serve_doc",),
    hint="every tenant entry is a mapping with at least 'name' and "
    "'model'; duplicate names would merge two arrival streams",
)
def check_tenants(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    tenants = doc.get("tenants")
    if not isinstance(tenants, list) or not tenants:
        yield Finding(
            f"tenants is {type(tenants).__name__ if tenants is not None else None}"
            ", expected a non-empty array",
            location="tenants",
        )
        return
    seen: set[str] = set()
    for i, t in enumerate(tenants):
        if not isinstance(t, Mapping):
            yield Finding(
                f"tenants[{i}] is {type(t).__name__}, expected a mapping",
                location=f"tenants[{i}]",
            )
            continue
        name = t.get("name")
        if not isinstance(name, str) or not name:
            yield Finding(
                f"tenants[{i}].name is {name!r}, expected a non-empty string",
                location=f"tenants[{i}].name",
            )
        elif name in seen:
            yield Finding(
                f"duplicate tenant name {name!r}",
                location=f"tenants[{i}].name",
            )
        else:
            seen.add(name)
        model = t.get("model")
        if not isinstance(model, str) or not model:
            yield Finding(
                f"tenants[{i}].model is {model!r}, expected a model name",
                location=f"tenants[{i}].model",
            )


@rule(
    "V003",
    severity=Severity.ERROR,
    pack="serve",
    title="tenant arrival processes must be well-formed",
    requires=("serve_doc",),
    hint="each tenant needs rate_qps > 0 and/or explicit arrivals_ms; "
    "times are non-negative finite milliseconds, deadlines positive",
)
def check_arrivals(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    tenants = doc.get("tenants")
    if not isinstance(tenants, list):
        return
    for i, t in enumerate(tenants):
        if not isinstance(t, Mapping):
            continue
        rate = _num(t.get("rate_qps", 0.0))
        if rate is None or rate < 0:
            yield Finding(
                f"tenants[{i}].rate_qps is {t.get('rate_qps')!r}, expected a "
                "non-negative finite number",
                location=f"tenants[{i}].rate_qps",
            )
            rate = 0.0
        arrivals = t.get("arrivals_ms", [])
        if not isinstance(arrivals, list):
            yield Finding(
                f"tenants[{i}].arrivals_ms is {type(arrivals).__name__}, "
                "expected an array of times",
                location=f"tenants[{i}].arrivals_ms",
            )
            arrivals = []
        else:
            for j, at in enumerate(arrivals):
                v = _num(at)
                if v is None or v < 0:
                    yield Finding(
                        f"tenants[{i}].arrivals_ms[{j}] is {at!r}, expected a "
                        "non-negative finite time",
                        location=f"tenants[{i}].arrivals_ms[{j}]",
                    )
        if rate == 0.0 and not arrivals:
            yield Finding(
                f"tenants[{i}] generates no requests (rate_qps 0 and no "
                "arrivals_ms)",
                location=f"tenants[{i}]",
            )
        deadline = _num(t.get("deadline_ms", 1000.0))
        if deadline is None or deadline <= 0:
            yield Finding(
                f"tenants[{i}].deadline_ms is {t.get('deadline_ms')!r}, "
                "expected a positive finite number",
                location=f"tenants[{i}].deadline_ms",
            )


@rule(
    "V004",
    severity=Severity.ERROR,
    pack="serve",
    title="pool and lease sizes must be consistent",
    requires=("serve_doc",),
    hint="1 <= degraded_gpus <= gpus_per_query <= num_gpus, and the "
    "horizon must be a positive finite duration",
)
def check_pool(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    num_gpus = _int(doc.get("num_gpus", 4))
    if num_gpus is None or num_gpus < 1:
        yield Finding(
            f"num_gpus is {doc.get('num_gpus')!r}, expected a positive integer",
            location="num_gpus",
        )
        return
    per_query = _int(doc.get("gpus_per_query", 2))
    if per_query is None or not (1 <= per_query <= num_gpus):
        yield Finding(
            f"gpus_per_query is {doc.get('gpus_per_query')!r}, expected an "
            f"integer in [1, {num_gpus}]",
            location="gpus_per_query",
        )
        per_query = num_gpus
    degraded = _int(doc.get("degraded_gpus", 1))
    if degraded is None or not (1 <= degraded <= per_query):
        yield Finding(
            f"degraded_gpus is {doc.get('degraded_gpus')!r}, expected an "
            f"integer in [1, {per_query}]",
            location="degraded_gpus",
        )
    horizon = _num(doc.get("horizon_ms", 1000.0))
    if horizon is None or horizon <= 0:
        yield Finding(
            f"horizon_ms is {doc.get('horizon_ms')!r}, expected a positive "
            "finite duration",
            location="horizon_ms",
        )
    max_batch = _int(doc.get("max_batch", 1))
    if max_batch is None or max_batch < 1:
        yield Finding(
            f"max_batch is {doc.get('max_batch')!r}, expected a positive "
            "integer (1 disables batching)",
            location="max_batch",
        )


@rule(
    "V005",
    severity=Severity.ERROR,
    pack="serve",
    title="scheduling algorithms must be registered",
    requires=("serve_doc",),
    hint=f"known algorithms: {', '.join(sorted(ALGORITHMS))}",
)
def check_algorithms(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    for field in ("algorithm", "degraded_algorithm"):
        alg = doc.get(field)
        if alg is not None and alg not in ALGORITHMS:
            yield Finding(
                f"{field} is {alg!r}, not a registered algorithm",
                location=field,
            )


@rule(
    "V006",
    severity=Severity.ERROR,
    pack="serve",
    title="fault specs must parse and target pool GPUs",
    requires=("serve_doc",),
    hint="faults use the compact spec strings (fail:G@T, repair:G@T, "
    "slow:G@TxF, link:S->D@TxF, loss:P[:jitter]) with GPU indices "
    "inside the pool",
)
def check_faults(ctx: LintContext) -> Iterator[Finding]:
    from ..substrate.faults import FaultError, FaultPlan

    doc = ctx.serve_doc
    assert doc is not None
    faults = doc.get("faults", [])
    if not isinstance(faults, list):
        yield Finding(
            f"faults is {type(faults).__name__}, expected an array of spec "
            "strings",
            location="faults",
        )
        return
    num_gpus = _int(doc.get("num_gpus", 4))
    for i, spec in enumerate(faults):
        if not isinstance(spec, str):
            yield Finding(
                f"faults[{i}] is {spec!r}, expected a spec string",
                location=f"faults[{i}]",
            )
            continue
        try:
            plan = FaultPlan.from_strings([spec])
            if num_gpus is not None and num_gpus >= 1:
                plan.validate_for(num_gpus)
        except FaultError as exc:
            yield Finding(str(exc), location=f"faults[{i}]")


@rule(
    "V007",
    severity=Severity.WARNING,
    pack="serve",
    title="overload threshold should be reachable",
    requires=("serve_doc",),
    hint="with overload_queue >= queue_capacity the queue sheds before "
    "degradation can ever engage; degraded knobs are then dead config",
)
def check_overload_reachable(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    capacity = _int(doc.get("queue_capacity", 16))
    overload = _int(doc.get("overload_queue", 8))
    if capacity is None or capacity < 1:
        yield Finding(
            f"queue_capacity is {doc.get('queue_capacity')!r}, expected a "
            "positive integer",
            location="queue_capacity",
        )
        return
    if overload is None or overload < 0:
        yield Finding(
            f"overload_queue is {doc.get('overload_queue')!r}, expected a "
            "non-negative integer",
            location="overload_queue",
        )
        return
    if overload >= capacity:
        yield Finding(
            f"overload_queue {overload} >= queue_capacity {capacity}: "
            "degradation can never engage before admission sheds",
            location="overload_queue",
        )


@rule(
    "V008",
    severity=Severity.WARNING,
    pack="serve",
    title="retry budget should cover injected GPU failures",
    requires=("serve_doc",),
    hint="a query displaced by a GPU failure needs max_retries >= 1 to "
    "be re-admitted; with 0 it fails outright",
)
def check_retry_budget(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    retries = _int(doc.get("max_retries", 2))
    if retries is None or retries < 0:
        yield Finding(
            f"max_retries is {doc.get('max_retries')!r}, expected a "
            "non-negative integer",
            location="max_retries",
        )
        return
    backoff = _num(doc.get("retry_backoff_ms", 5.0))
    if backoff is None or backoff < 0:
        yield Finding(
            f"retry_backoff_ms is {doc.get('retry_backoff_ms')!r}, expected "
            "a non-negative finite number",
            location="retry_backoff_ms",
        )
    faults = doc.get("faults", [])
    has_failures = isinstance(faults, list) and any(
        isinstance(s, str) and s.startswith("fail:") for s in faults
    )
    if retries == 0 and has_failures:
        yield Finding(
            "max_retries is 0 while the fault plan injects GPU failures: "
            "displaced queries will fail instead of being re-admitted",
            location="max_retries",
        )


#: Counter fields every ``repro.servereport/v1`` document must carry as
#: non-negative integers.
_REPORT_COUNTERS = (
    "arrivals",
    "admitted",
    "completed",
    "shed_queue_full",
    "shed_deadline",
    "failed",
    "deadline_misses",
    "retries",
    "displaced",
    "repairs",
    "degraded_dispatches",
    "revived",
    "batched",
    "elastic_grows",
    "elastic_shrinks",
)


@rule(
    "V009",
    severity=Severity.ERROR,
    pack="serve",
    title="report counters must satisfy their conservation identities",
    requires=("serve_report_doc",),
    hint="arrivals == admitted + shed_queue_full and admitted == "
    "completed + shed_deadline + failed: every request reaches exactly "
    "one terminal status; a report violating this was not produced by "
    "the simulator",
)
def check_report_counters(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_report_doc
    assert doc is not None
    fmt = doc.get("format")
    if fmt != SERVE_REPORT_FORMAT:
        yield Finding(
            f"format is {fmt!r}, expected {SERVE_REPORT_FORMAT!r}",
            location="format",
        )
        return
    counts: dict[str, int] = {}
    bad = False
    for key in _REPORT_COUNTERS:
        v = _int(doc.get(key))
        if v is None or v < 0:
            yield Finding(
                f"{key} is {doc.get(key)!r}, expected a non-negative integer",
                location=key,
            )
            bad = True
        else:
            counts[key] = v
    if bad:
        return
    if counts["arrivals"] != counts["admitted"] + counts["shed_queue_full"]:
        yield Finding(
            f"arrivals {counts['arrivals']} != admitted {counts['admitted']} "
            f"+ shed_queue_full {counts['shed_queue_full']}",
            location="arrivals",
        )
    terminal = counts["completed"] + counts["shed_deadline"] + counts["failed"]
    if counts["admitted"] != terminal:
        yield Finding(
            f"admitted {counts['admitted']} != completed {counts['completed']} "
            f"+ shed_deadline {counts['shed_deadline']} "
            f"+ failed {counts['failed']}",
            location="admitted",
        )
    if counts["deadline_misses"] > counts["completed"]:
        yield Finding(
            f"deadline_misses {counts['deadline_misses']} exceeds "
            f"completed {counts['completed']}",
            location="deadline_misses",
        )


@rule(
    "V010",
    severity=Severity.ERROR,
    pack="serve",
    title="embedded request records must add up to the report counters",
    requires=("serve_report_doc",),
    hint="with --requests the per-request records are the ground truth: "
    "completions, batched followers, repair rounds, displacements and "
    "elastic resizes summed over records must equal the aggregate "
    "counters",
)
def check_report_records(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_report_doc
    assert doc is not None
    if doc.get("format") != SERVE_REPORT_FORMAT:
        return  # V009 already flags the format
    requests = doc.get("requests")
    if requests is None:
        return  # records not embedded; nothing to cross-check
    if not isinstance(requests, list):
        yield Finding(
            f"requests is {type(requests).__name__}, expected an array of "
            "request records",
            location="requests",
        )
        return
    records = [r for r in requests if isinstance(r, Mapping)]
    for i, r in enumerate(requests):
        if not isinstance(r, Mapping):
            yield Finding(
                f"requests[{i}] is {type(r).__name__}, expected a mapping",
                location=f"requests[{i}]",
            )
    derived = {
        "arrivals": len(records),
        "completed": sum(1 for r in records if r.get("status") == "completed"),
        "shed_queue_full": sum(
            1 for r in records if r.get("status") == "shed-queue"
        ),
        "shed_deadline": sum(
            1 for r in records if r.get("status") == "shed-deadline"
        ),
        "failed": sum(1 for r in records if r.get("status") == "failed"),
        "deadline_misses": sum(
            1
            for r in records
            if r.get("status") == "completed" and r.get("deadline_met") is False
        ),
        "batched": sum(1 for r in records if r.get("batched_with")),
        "repairs": sum(
            v for r in records if (v := _int(r.get("repairs", 0))) is not None
        ),
        "displaced": sum(
            v for r in records if (v := _int(r.get("displaced", 0))) is not None
        ),
    }
    for key, want in derived.items():
        have = _int(doc.get(key))
        if have is not None and have != want:
            yield Finding(
                f"{key} is {have} but the embedded records add up to {want}",
                location=key,
            )
    resizes = sum(
        v for r in records if (v := _int(r.get("resizes", 0))) is not None
    )
    grows, shrinks = _int(doc.get("elastic_grows")), _int(doc.get("elastic_shrinks"))
    if grows is not None and shrinks is not None and grows + shrinks != resizes:
        yield Finding(
            f"elastic_grows {grows} + elastic_shrinks {shrinks} != "
            f"sum of per-record resizes {resizes}",
            location="elastic_grows",
        )
