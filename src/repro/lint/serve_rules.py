"""Serving-config rules (``V0xx``): ``repro.serve/v1`` document hygiene.

Serving scenarios are committed as JSON next to the benchmark baselines
they produced, and CI replays them bit-for-bit — so a malformed config
is not a runtime inconvenience, it silently changes what the regression
gate is comparing.  These rules check the raw document *before*
:class:`repro.serve.config.ServeConfig` ever constructs: the format
marker, tenant shape and arrival processes, pool/lease arithmetic,
registered algorithms, parseable fault specs within pool range, and
policy-knob sanity (an unreachable overload threshold, a zero-retry
config facing injected GPU failures).

The pack works on the plain mapping only — it never imports
:mod:`repro.serve` — so ``repro lint`` can classify foreign documents
without executing scenario code.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Mapping

from ..core.api import ALGORITHMS
from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []

SERVE_CONFIG_FORMAT = "repro.serve/v1"


def _num(value: Any) -> float | None:
    """The value as a float, or ``None`` when it is not a finite number."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if not math.isfinite(value):
        return None
    return float(value)


def _int(value: Any) -> int | None:
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


@rule(
    "V001",
    severity=Severity.ERROR,
    pack="serve",
    title="serving config must carry the serve format marker",
    requires=("serve_doc",),
    hint=f"the simulator only accepts documents with format "
    f"{SERVE_CONFIG_FORMAT!r}",
)
def check_format(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    fmt = doc.get("format")
    if fmt != SERVE_CONFIG_FORMAT:
        yield Finding(
            f"format is {fmt!r}, expected {SERVE_CONFIG_FORMAT!r}",
            location="format",
        )


@rule(
    "V002",
    severity=Severity.ERROR,
    pack="serve",
    title="tenants must be a non-empty list with unique names",
    requires=("serve_doc",),
    hint="every tenant entry is a mapping with at least 'name' and "
    "'model'; duplicate names would merge two arrival streams",
)
def check_tenants(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    tenants = doc.get("tenants")
    if not isinstance(tenants, list) or not tenants:
        yield Finding(
            f"tenants is {type(tenants).__name__ if tenants is not None else None}"
            ", expected a non-empty array",
            location="tenants",
        )
        return
    seen: set[str] = set()
    for i, t in enumerate(tenants):
        if not isinstance(t, Mapping):
            yield Finding(
                f"tenants[{i}] is {type(t).__name__}, expected a mapping",
                location=f"tenants[{i}]",
            )
            continue
        name = t.get("name")
        if not isinstance(name, str) or not name:
            yield Finding(
                f"tenants[{i}].name is {name!r}, expected a non-empty string",
                location=f"tenants[{i}].name",
            )
        elif name in seen:
            yield Finding(
                f"duplicate tenant name {name!r}",
                location=f"tenants[{i}].name",
            )
        else:
            seen.add(name)
        model = t.get("model")
        if not isinstance(model, str) or not model:
            yield Finding(
                f"tenants[{i}].model is {model!r}, expected a model name",
                location=f"tenants[{i}].model",
            )


@rule(
    "V003",
    severity=Severity.ERROR,
    pack="serve",
    title="tenant arrival processes must be well-formed",
    requires=("serve_doc",),
    hint="each tenant needs rate_qps > 0 and/or explicit arrivals_ms; "
    "times are non-negative finite milliseconds, deadlines positive",
)
def check_arrivals(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    tenants = doc.get("tenants")
    if not isinstance(tenants, list):
        return
    for i, t in enumerate(tenants):
        if not isinstance(t, Mapping):
            continue
        rate = _num(t.get("rate_qps", 0.0))
        if rate is None or rate < 0:
            yield Finding(
                f"tenants[{i}].rate_qps is {t.get('rate_qps')!r}, expected a "
                "non-negative finite number",
                location=f"tenants[{i}].rate_qps",
            )
            rate = 0.0
        arrivals = t.get("arrivals_ms", [])
        if not isinstance(arrivals, list):
            yield Finding(
                f"tenants[{i}].arrivals_ms is {type(arrivals).__name__}, "
                "expected an array of times",
                location=f"tenants[{i}].arrivals_ms",
            )
            arrivals = []
        else:
            for j, at in enumerate(arrivals):
                v = _num(at)
                if v is None or v < 0:
                    yield Finding(
                        f"tenants[{i}].arrivals_ms[{j}] is {at!r}, expected a "
                        "non-negative finite time",
                        location=f"tenants[{i}].arrivals_ms[{j}]",
                    )
        if rate == 0.0 and not arrivals:
            yield Finding(
                f"tenants[{i}] generates no requests (rate_qps 0 and no "
                "arrivals_ms)",
                location=f"tenants[{i}]",
            )
        deadline = _num(t.get("deadline_ms", 1000.0))
        if deadline is None or deadline <= 0:
            yield Finding(
                f"tenants[{i}].deadline_ms is {t.get('deadline_ms')!r}, "
                "expected a positive finite number",
                location=f"tenants[{i}].deadline_ms",
            )


@rule(
    "V004",
    severity=Severity.ERROR,
    pack="serve",
    title="pool and lease sizes must be consistent",
    requires=("serve_doc",),
    hint="1 <= degraded_gpus <= gpus_per_query <= num_gpus, and the "
    "horizon must be a positive finite duration",
)
def check_pool(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    num_gpus = _int(doc.get("num_gpus", 4))
    if num_gpus is None or num_gpus < 1:
        yield Finding(
            f"num_gpus is {doc.get('num_gpus')!r}, expected a positive integer",
            location="num_gpus",
        )
        return
    per_query = _int(doc.get("gpus_per_query", 2))
    if per_query is None or not (1 <= per_query <= num_gpus):
        yield Finding(
            f"gpus_per_query is {doc.get('gpus_per_query')!r}, expected an "
            f"integer in [1, {num_gpus}]",
            location="gpus_per_query",
        )
        per_query = num_gpus
    degraded = _int(doc.get("degraded_gpus", 1))
    if degraded is None or not (1 <= degraded <= per_query):
        yield Finding(
            f"degraded_gpus is {doc.get('degraded_gpus')!r}, expected an "
            f"integer in [1, {per_query}]",
            location="degraded_gpus",
        )
    horizon = _num(doc.get("horizon_ms", 1000.0))
    if horizon is None or horizon <= 0:
        yield Finding(
            f"horizon_ms is {doc.get('horizon_ms')!r}, expected a positive "
            "finite duration",
            location="horizon_ms",
        )


@rule(
    "V005",
    severity=Severity.ERROR,
    pack="serve",
    title="scheduling algorithms must be registered",
    requires=("serve_doc",),
    hint=f"known algorithms: {', '.join(sorted(ALGORITHMS))}",
)
def check_algorithms(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    for field in ("algorithm", "degraded_algorithm"):
        alg = doc.get(field)
        if alg is not None and alg not in ALGORITHMS:
            yield Finding(
                f"{field} is {alg!r}, not a registered algorithm",
                location=field,
            )


@rule(
    "V006",
    severity=Severity.ERROR,
    pack="serve",
    title="fault specs must parse and target pool GPUs",
    requires=("serve_doc",),
    hint="faults use the compact spec strings (fail:G@T, slow:G@TxF, "
    "link:S->D@TxF, loss:P[:jitter]) with GPU indices inside the pool",
)
def check_faults(ctx: LintContext) -> Iterator[Finding]:
    from ..substrate.faults import FaultError, FaultPlan

    doc = ctx.serve_doc
    assert doc is not None
    faults = doc.get("faults", [])
    if not isinstance(faults, list):
        yield Finding(
            f"faults is {type(faults).__name__}, expected an array of spec "
            "strings",
            location="faults",
        )
        return
    num_gpus = _int(doc.get("num_gpus", 4))
    for i, spec in enumerate(faults):
        if not isinstance(spec, str):
            yield Finding(
                f"faults[{i}] is {spec!r}, expected a spec string",
                location=f"faults[{i}]",
            )
            continue
        try:
            plan = FaultPlan.from_strings([spec])
            if num_gpus is not None and num_gpus >= 1:
                plan.validate_for(num_gpus)
        except FaultError as exc:
            yield Finding(str(exc), location=f"faults[{i}]")


@rule(
    "V007",
    severity=Severity.WARNING,
    pack="serve",
    title="overload threshold should be reachable",
    requires=("serve_doc",),
    hint="with overload_queue >= queue_capacity the queue sheds before "
    "degradation can ever engage; degraded knobs are then dead config",
)
def check_overload_reachable(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    capacity = _int(doc.get("queue_capacity", 16))
    overload = _int(doc.get("overload_queue", 8))
    if capacity is None or capacity < 1:
        yield Finding(
            f"queue_capacity is {doc.get('queue_capacity')!r}, expected a "
            "positive integer",
            location="queue_capacity",
        )
        return
    if overload is None or overload < 0:
        yield Finding(
            f"overload_queue is {doc.get('overload_queue')!r}, expected a "
            "non-negative integer",
            location="overload_queue",
        )
        return
    if overload >= capacity:
        yield Finding(
            f"overload_queue {overload} >= queue_capacity {capacity}: "
            "degradation can never engage before admission sheds",
            location="overload_queue",
        )


@rule(
    "V008",
    severity=Severity.WARNING,
    pack="serve",
    title="retry budget should cover injected GPU failures",
    requires=("serve_doc",),
    hint="a query displaced by a GPU failure needs max_retries >= 1 to "
    "be re-admitted; with 0 it fails outright",
)
def check_retry_budget(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.serve_doc
    assert doc is not None
    retries = _int(doc.get("max_retries", 2))
    if retries is None or retries < 0:
        yield Finding(
            f"max_retries is {doc.get('max_retries')!r}, expected a "
            "non-negative integer",
            location="max_retries",
        )
        return
    backoff = _num(doc.get("retry_backoff_ms", 5.0))
    if backoff is None or backoff < 0:
        yield Finding(
            f"retry_backoff_ms is {doc.get('retry_backoff_ms')!r}, expected "
            "a non-negative finite number",
            location="retry_backoff_ms",
        )
    faults = doc.get("faults", [])
    has_failures = isinstance(faults, list) and any(
        isinstance(s, str) and s.startswith("fail:") for s in faults
    )
    if retries == 0 and has_failures:
        yield Finding(
            "max_retries is 0 while the fault plan injects GPU failures: "
            "displaced queries will fail instead of being re-admitted",
            location="max_retries",
        )
