"""Trace rules (``T0xx``): causality and consistency of execution traces.

An :class:`~repro.substrate.engine.ExecutionTrace` claims when every
operator launched, started and finished.  Whatever produced it — the
discrete-event engine, a fault-injected run, a spliced repair — physics
must hold: timestamps are finite and ordered, no operator starts before
its producers' outputs exist (plus the transfer time when the producer
lives on another GPU), per-GPU stages do not overlap, and the trace
agrees with the schedule it claims to have executed.

Traces are duck-typed here (``op_launch`` / ``op_start`` / ``op_finish``
dicts, ``latency``, optional ``failure``) so the lint pack never has to
import the substrate — partial failure traces lint fine: operators cut
off mid-flight are exempt from finish-side checks and producers that
finished *before* the failure are treated as host-checkpointed (their
outputs re-stage for free, the repair model of ``repro.core.repair``).

The pairwise-causality rules (``T004``/``T005``) delegate to the
requirement layer of the vector-clock checker
(:mod:`repro.sanitize.vclock`) — one implementation serves both the
lint pack and ``repro sanitize``'s full linearization check, with the
findings (messages, locations, order) unchanged.
"""

from __future__ import annotations

import math
from typing import Iterator

from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []


def _failure_finished(ctx: LintContext) -> frozenset[str]:
    failure = getattr(ctx.trace, "failure", None)
    if failure is None:
        return frozenset()
    return frozenset(failure.finished)


@rule(
    "T001",
    severity=Severity.ERROR,
    pack="trace",
    title="timestamps must be finite and non-negative",
    requires=("trace",),
    hint="negative/NaN times mean clock arithmetic went wrong in "
    "whatever emitted the trace",
)
def check_timestamps(ctx: LintContext) -> Iterator[Finding]:
    trace = ctx.trace
    assert trace is not None
    for kind in ("op_launch", "op_start", "op_finish"):
        for op, t in sorted(getattr(trace, kind).items()):
            if not math.isfinite(t) or t < 0.0:
                yield Finding(
                    f"{kind}[{op!r}] is {t}", location=f"op:{op}"
                )
    if not math.isfinite(trace.latency) or trace.latency < 0.0:
        yield Finding(f"trace latency is {trace.latency}")
    for g, busy in sorted(trace.gpu_busy.items()):
        if not math.isfinite(busy) or busy < 0.0:
            yield Finding(f"gpu_busy[{g}] is {busy}", location=f"gpu:{g}")


@rule(
    "T002",
    severity=Severity.ERROR,
    pack="trace",
    title="operators must finish after they start",
    requires=("trace",),
)
def check_start_before_finish(ctx: LintContext) -> Iterator[Finding]:
    trace = ctx.trace
    assert trace is not None
    for op, fin in sorted(trace.op_finish.items()):
        start = trace.op_start.get(op)
        if start is None:
            yield Finding(
                f"operator {op!r} has a finish time but no start time",
                location=f"op:{op}",
            )
        elif fin < start - ctx.eps:
            yield Finding(
                f"operator {op!r} finishes at {fin} before its start {start}",
                location=f"op:{op}",
            )


@rule(
    "T003",
    severity=Severity.ERROR,
    pack="trace",
    title="launch precedes start",
    requires=("trace",),
    hint="a kernel cannot start before its host process launched it",
)
def check_launch_before_start(ctx: LintContext) -> Iterator[Finding]:
    trace = ctx.trace
    assert trace is not None
    for op, start in sorted(trace.op_start.items()):
        launch = trace.op_launch.get(op)
        if launch is not None and start < launch - ctx.eps:
            yield Finding(
                f"operator {op!r} starts at {start} before its launch {launch}",
                location=f"op:{op}",
            )


@rule(
    "T004",
    severity=Severity.ERROR,
    pack="trace",
    title="causality: producers finish before consumers start",
    requires=("graph", "trace"),
    hint="an operator consumed a tensor that did not exist yet; the "
    "emitting engine broke dependency ordering",
)
def check_causality(ctx: LintContext) -> Iterator[Finding]:
    graph, trace = ctx.graph, ctx.trace
    assert graph is not None and trace is not None
    from ..sanitize.vclock import dependency_violations

    for vio in dependency_violations(graph, trace, eps=ctx.eps):
        if vio.t_src is None:
            yield Finding(
                f"operator {vio.v!r} starts at {vio.t_dst} but its "
                f"producer {vio.u!r} never finished",
                location=f"edge:{vio.u}->{vio.v}",
            )
        else:
            yield Finding(
                f"operator {vio.v!r} starts at {vio.t_dst} before its "
                f"producer {vio.u!r} finishes at {vio.t_src}",
                location=f"edge:{vio.u}->{vio.v}",
            )


@rule(
    "T005",
    severity=Severity.ERROR,
    pack="trace",
    title="causality: cross-GPU consumers wait for the transfer",
    requires=("graph", "schedule", "trace"),
    hint="start(v) must be at least finish(u) + t(u,v) when u and v "
    "are mapped to different GPUs",
)
def check_transfer_causality(ctx: LintContext) -> Iterator[Finding]:
    graph, schedule, trace = ctx.graph, ctx.schedule, ctx.trace
    assert graph is not None and schedule is not None and trace is not None
    from ..sanitize.vclock import transfer_violations

    # checkpointed outputs re-stage for free after repair; T004 reports
    # missing producers — both exemptions live in the shared checker
    for vio in transfer_violations(
        graph, schedule, trace, eps=ctx.eps, checkpointed=_failure_finished(ctx)
    ):
        fin_u = vio.t_src
        assert fin_u is not None  # transfer violations always have one
        yield Finding(
            f"operator {vio.v!r} starts at {vio.t_dst} but the transfer "
            f"from {vio.u!r} (finish {fin_u} + t(u,v) {vio.transfer}) "
            f"only completes at {fin_u + vio.transfer}",
            location=f"edge:{vio.u}->{vio.v}",
        )


@rule(
    "T006",
    severity=Severity.ERROR,
    pack="trace",
    title="trace and schedule must agree on the operator set",
    requires=("schedule", "trace"),
    hint="the trace was produced by a different schedule, or the run "
    "dropped operators without recording a failure",
)
def check_schedule_agreement(ctx: LintContext) -> Iterator[Finding]:
    schedule, trace = ctx.schedule, ctx.trace
    assert schedule is not None and trace is not None
    scheduled = set(schedule.operators())
    for kind in ("op_launch", "op_start", "op_finish"):
        for op in sorted(set(getattr(trace, kind)) - scheduled):
            yield Finding(
                f"trace records {kind.removeprefix('op_')} of {op!r} which "
                "the schedule never places",
                location=f"op:{op}",
            )
    if getattr(trace, "failure", None) is None:
        missing = sorted(scheduled - set(trace.op_finish))
        if missing:
            shown = ", ".join(repr(op) for op in missing[:5])
            if len(missing) > 5:
                shown += f", ... ({len(missing) - 5} more)"
            yield Finding(
                f"trace completed without a failure but {len(missing)} "
                f"scheduled operator(s) never finished: {shown}",
                location=f"op:{missing[0]}",
            )


@rule(
    "T007",
    severity=Severity.ERROR,
    pack="trace",
    title="stages on one GPU must not overlap",
    requires=("schedule", "trace"),
    hint="stage j+1 may only start after every operator of stage j "
    "finished on that GPU (the stage-barrier execution model)",
)
def check_stage_overlap(ctx: LintContext) -> Iterator[Finding]:
    schedule, trace = ctx.schedule, ctx.trace
    assert schedule is not None and trace is not None
    for gpu in range(schedule.num_gpus):
        chain = schedule.stages_on(gpu)
        for si, (a, b) in enumerate(zip(chain, chain[1:])):
            fins = [trace.op_finish[op] for op in a.ops if op in trace.op_finish]
            starts = [trace.op_start[op] for op in b.ops if op in trace.op_start]
            if not fins or not starts:
                continue  # partial trace: the barrier never engaged
            barrier, nxt = max(fins), min(starts)
            if nxt < barrier - ctx.eps:
                yield Finding(
                    f"stage {si + 1} on GPU {gpu} starts at {nxt} while "
                    f"stage {si} only finishes at {barrier} (stages overlap)",
                    location=f"gpu:{gpu}/stage:{si + 1}",
                )


@rule(
    "T008",
    severity=Severity.WARNING,
    pack="trace",
    title="latency covers the last finish",
    requires=("trace",),
    hint="a trace's latency should equal the last operator finish (or "
    "the failure instant for partial traces)",
)
def check_latency_consistency(ctx: LintContext) -> Iterator[Finding]:
    trace = ctx.trace
    assert trace is not None
    if getattr(trace, "failure", None) is not None:
        return  # partial traces cut the clock at the failure instant
    last = max(trace.op_finish.values(), default=0.0)
    if trace.latency < last - ctx.eps:
        yield Finding(
            f"trace latency {trace.latency} is earlier than the last "
            f"operator finish {last}"
        )
