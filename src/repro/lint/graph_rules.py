"""Graph rules (``G0xx``): structural sanity of the computation DAG.

These go beyond :meth:`OpGraph.validate`'s acyclicity check: isolated
vertices, unusual source/sink counts, degenerate weights and suspicious
fan-out all signal a mis-built or mis-profiled model before any
scheduler touches it.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..core.graph import OpGraph
from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []


def _cycle_vertices(graph: OpGraph) -> list[str]:
    """Vertices that never become ready under Kahn's algorithm."""
    indeg = {v: graph.in_degree(v) for v in graph}
    ready = [v for v, d in indeg.items() if d == 0]
    seen = 0
    while ready:
        v = ready.pop()
        seen += 1
        for s in graph.successors(v):
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if seen == len(graph):
        return []
    return sorted(v for v, d in indeg.items() if d > 0)


@rule(
    "G001",
    severity=Severity.ERROR,
    pack="graph",
    title="computation graph must be acyclic",
    requires=("graph",),
    hint="break the dependency cycle; a DAG is required by every scheduler",
)
def check_acyclic(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.graph is not None
    stuck = _cycle_vertices(ctx.graph)
    if stuck:
        shown = ", ".join(repr(v) for v in stuck[:5])
        if len(stuck) > 5:
            shown += f", ... ({len(stuck) - 5} more)"
        yield Finding(
            f"computation graph contains a cycle through {len(stuck)} "
            f"operator(s): {shown}",
            location=f"op:{stuck[0]}",
        )


@rule(
    "G002",
    severity=Severity.WARNING,
    pack="graph",
    title="no unreachable/isolated operators",
    requires=("graph",),
    hint="connect the operator to the dataflow or drop it from the graph",
)
def check_unreachable(ctx: LintContext) -> Iterator[Finding]:
    graph = ctx.graph
    assert graph is not None
    if len(graph) <= 1:
        return
    for v in graph:
        if graph.in_degree(v) == 0 and graph.out_degree(v) == 0:
            yield Finding(
                f"operator {v!r} is isolated: unreachable from the rest of "
                "the dataflow (no predecessors, no successors)",
                location=f"op:{v}",
            )


@rule(
    "G003",
    severity=Severity.INFO,
    pack="graph",
    title="single model input expected",
    requires=("graph",),
    hint="multiple sources are legal but unusual for one inference DAG",
)
def check_sources(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.graph is not None
    sources = ctx.graph.sources()
    if len(sources) > 1:
        yield Finding(
            f"graph has {len(sources)} source operators: "
            + ", ".join(repr(s) for s in sorted(sources)[:5]),
            location=f"op:{sorted(sources)[0]}",
        )


@rule(
    "G004",
    severity=Severity.INFO,
    pack="graph",
    title="single model output expected",
    requires=("graph",),
    hint="multiple sinks are legal but unusual for one inference DAG",
)
def check_sinks(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.graph is not None
    sinks = ctx.graph.sinks()
    if len(sinks) > 1:
        yield Finding(
            f"graph has {len(sinks)} sink operators: "
            + ", ".join(repr(s) for s in sorted(sinks)[:5]),
            location=f"op:{sorted(sinks)[0]}",
        )


@rule(
    "G005",
    severity=Severity.WARNING,
    pack="graph",
    title="operator weights must be positive",
    requires=("graph",),
    hint="zero-cost operators distort priorities; fold them into a "
    "neighbor or give them their measured cost",
)
def check_weights(ctx: LintContext) -> Iterator[Finding]:
    graph = ctx.graph
    assert graph is not None
    for op in graph.operators():
        if op.cost == 0.0:
            yield Finding(
                f"operator {op.name!r} has zero cost t(v)",
                location=f"op:{op.name}",
            )
        elif op.cost < 0.0:  # defensive: Operator rejects this at build time
            yield Finding(
                f"operator {op.name!r} has negative cost {op.cost}",
                location=f"op:{op.name}",
            )
    for u, v, w in graph.edges():
        if w < 0.0:
            yield Finding(
                f"edge ({u!r}, {v!r}) has negative transfer time {w}",
                location=f"edge:{u}->{v}",
            )


@rule(
    "G006",
    severity=Severity.WARNING,
    pack="graph",
    title="suspicious fan-out",
    requires=("graph",),
    hint="a very wide broadcast usually means a missing split/copy "
    "operator or a profiling artifact",
)
def check_fanout(ctx: LintContext) -> Iterator[Finding]:
    graph = ctx.graph
    assert graph is not None
    limit = ctx.fanout_threshold
    for v in graph:
        deg = graph.out_degree(v)
        if deg > limit:
            yield Finding(
                f"operator {v!r} feeds {deg} consumers "
                f"(fan-out threshold {limit})",
                location=f"op:{v}",
            )


@rule(
    "G007",
    severity=Severity.ERROR,
    pack="graph",
    title="weights must be finite numbers",
    requires=("graph",),
    hint="NaN/inf weights silently poison every latency computation; "
    "re-profile the operator",
)
def check_finite(ctx: LintContext) -> Iterator[Finding]:
    graph = ctx.graph
    assert graph is not None
    for op in graph.operators():
        if not math.isfinite(op.cost):
            yield Finding(
                f"operator {op.name!r} has non-finite cost {op.cost}",
                location=f"op:{op.name}",
            )
        if not math.isfinite(op.occupancy):
            yield Finding(
                f"operator {op.name!r} has non-finite occupancy {op.occupancy}",
                location=f"op:{op.name}",
            )
    for u, v, w in graph.edges():
        if not math.isfinite(w):
            yield Finding(
                f"edge ({u!r}, {v!r}) has non-finite transfer time {w}",
                location=f"edge:{u}->{v}",
            )
