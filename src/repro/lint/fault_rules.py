"""Fault-plan rules (``F0xx``): sanity of declarative fault plans.

A :class:`~repro.substrate.faults.FaultPlan` is validated structurally
at construction, but whole-plan properties — indices vs. the run's GPU
count, events that can never fire, contradictory spec combinations,
retry budgets that a loss probability will realistically exhaust — only
make sense against context.  These rules catch the "why did my fault
do nothing?" class of experiment bugs before a run burns time.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..substrate.faults import (
    FaultSpec,
    GpuFailure,
    GpuSlowdown,
    LinkDegradation,
    TransferLoss,
)
from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []


def _spec_gpus(spec: FaultSpec) -> tuple[int, ...]:
    if isinstance(spec, (GpuSlowdown, GpuFailure)):
        return (spec.gpu,)
    if isinstance(spec, LinkDegradation):
        return (spec.src, spec.dst)
    return ()


@rule(
    "F001",
    severity=Severity.ERROR,
    pack="faults",
    title="fault targets must exist",
    requires=("plan",),
    hint="the spec names a GPU or link endpoint outside [0, num_gpus); "
    "it would raise at run time or silently target nothing",
)
def check_gpu_indices(ctx: LintContext) -> Iterator[Finding]:
    plan = ctx.plan
    assert plan is not None
    num_gpus = ctx.num_gpus
    if num_gpus is None and ctx.schedule is not None:
        num_gpus = ctx.schedule.num_gpus
    if num_gpus is None:
        return
    for i, spec in enumerate(plan.specs):
        bad = [g for g in _spec_gpus(spec) if g >= num_gpus]
        if bad:
            yield Finding(
                f"{type(spec).__name__} targets GPU {bad[0]} but the run "
                f"uses {num_gpus} GPU(s)",
                location=f"spec:{i}",
            )


@rule(
    "F002",
    severity=Severity.WARNING,
    pack="faults",
    title="fault events must fire within the horizon",
    requires=("plan",),
    hint="the event time is at or beyond the run's horizon (expected "
    "makespan); the fault will never be observed",
)
def check_horizon(ctx: LintContext) -> Iterator[Finding]:
    plan = ctx.plan
    assert plan is not None
    if ctx.horizon is None:
        return
    for i, spec in enumerate(plan.specs):
        at = getattr(spec, "at", None)
        if at is not None and at >= ctx.horizon:
            yield Finding(
                f"{type(spec).__name__} fires at t={at} ms but the run "
                f"horizon is {ctx.horizon} ms",
                location=f"spec:{i}",
            )


@rule(
    "F003",
    severity=Severity.WARNING,
    pack="faults",
    title="no contradictory fault specs",
    requires=("plan",),
    hint="faults scheduled on/after a GPU's fail-stop can never be "
    "observed; the engine halts at the first failure",
)
def check_contradictions(ctx: LintContext) -> Iterator[Finding]:
    plan = ctx.plan
    assert plan is not None
    failures = plan.failures()
    if not failures:
        return
    first = failures[0]
    fail_at: dict[int, float] = {}
    for f in failures:
        fail_at.setdefault(f.gpu, f.at)
    for i, spec in enumerate(plan.specs):
        if isinstance(spec, GpuFailure):
            if spec.gpu in fail_at and spec.at > fail_at[spec.gpu]:
                yield Finding(
                    f"GPU {spec.gpu} fail-stops at t={fail_at[spec.gpu]} ms; "
                    f"the second failure at t={spec.at} ms can never fire",
                    location=f"spec:{i}",
                )
            elif spec is not first and spec.at > first.at:
                yield Finding(
                    f"the engine halts at the first fail-stop (GPU "
                    f"{first.gpu}, t={first.at} ms); the failure of GPU "
                    f"{spec.gpu} at t={spec.at} ms is unreachable",
                    location=f"spec:{i}",
                )
        elif isinstance(spec, GpuSlowdown):
            when = fail_at.get(spec.gpu)
            if when is not None and spec.at >= when:
                yield Finding(
                    f"GpuSlowdown of GPU {spec.gpu} at t={spec.at} ms is "
                    f"unreachable: the GPU fail-stops at t={when} ms",
                    location=f"spec:{i}",
                )
        elif isinstance(spec, LinkDegradation):
            for g in (spec.src, spec.dst):
                when = fail_at.get(g)
                if when is not None and spec.at >= when:
                    yield Finding(
                        f"LinkDegradation of link {spec.src}->{spec.dst} at "
                        f"t={spec.at} ms is unreachable: GPU {g} fail-stops "
                        f"at t={when} ms",
                        location=f"spec:{i}",
                    )
                    break


@rule(
    "F004",
    severity=Severity.ERROR,
    pack="faults",
    title="fault parameters must be finite",
    requires=("plan",),
    hint="NaN/inf event times or factors pass construction-time range "
    "checks but corrupt the event queue",
)
def check_finite_params(ctx: LintContext) -> Iterator[Finding]:
    plan = ctx.plan
    assert plan is not None
    fields = ("at", "factor", "bw_factor", "prob", "timeout_ms", "backoff_ms")
    for i, spec in enumerate(plan.specs):
        for name in fields:
            value = getattr(spec, name, None)
            if value is not None and not math.isfinite(value):
                yield Finding(
                    f"{type(spec).__name__}.{name} is {value}",
                    location=f"spec:{i}",
                )


@rule(
    "F005",
    severity=Severity.WARNING,
    pack="faults",
    title="loss probability must leave a survivable retry budget",
    requires=("plan",),
    hint="raise max_retries or lower the loss probability; an "
    "exhausted budget aborts the run with a FaultError",
)
def check_loss_budget(ctx: LintContext) -> Iterator[Finding]:
    plan = ctx.plan
    assert plan is not None
    for i, spec in enumerate(plan.specs):
        if not isinstance(spec, TransferLoss) or spec.prob <= 0.0:
            continue
        p_exhaust = spec.prob ** spec.max_retries
        if p_exhaust > 1e-3:
            yield Finding(
                f"TransferLoss(prob={spec.prob}, max_retries="
                f"{spec.max_retries}) exhausts its retry budget with "
                f"probability {p_exhaust:.2g} per message",
                location=f"spec:{i}",
            )


@rule(
    "F006",
    severity=Severity.INFO,
    pack="faults",
    title="no no-op fault specs",
    requires=("plan",),
    hint="a factor of 1.0 injects nothing; drop the spec or pick a "
    "real degradation factor",
)
def check_noop_specs(ctx: LintContext) -> Iterator[Finding]:
    plan = ctx.plan
    assert plan is not None
    for i, spec in enumerate(plan.specs):
        if isinstance(spec, GpuSlowdown) and spec.factor == 1.0:
            yield Finding(
                f"GpuSlowdown of GPU {spec.gpu} has factor 1.0 (no effect)",
                location=f"spec:{i}",
            )
        elif isinstance(spec, LinkDegradation) and spec.bw_factor == 1.0:
            yield Finding(
                f"LinkDegradation of link {spec.src}->{spec.dst} has "
                "bw_factor 1.0 (no effect)",
                location=f"spec:{i}",
            )
