"""Schedule rules (``S0xx``): feasibility and quality of a schedule.

Two groups share the pack:

* **document rules** (``schedule_doc`` subject) check a raw JSON
  schedule document *before* a :class:`Schedule` is even constructed —
  duplicate placements, bad GPU indices, malformed stages.  They are
  the machine-checkable JSON contract between any scheduler and any
  engine; :meth:`Schedule.from_dict` rejects documents these flag.
* **object rules** (``graph`` + ``schedule`` subjects) check a built
  schedule against its graph: the Alg. 1/3 placement-completeness and
  Alg. 2 stage invariants (every op exactly once, independent stages,
  acyclic stage graph, window bound), plus quality findings (idle GPUs,
  degenerate singleton stages, cross-GPU critical-path edges).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from ..core.priority import critical_path
from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []


# ----------------------------------------------------------------------
# document helpers
# ----------------------------------------------------------------------
def _doc_num_gpus(doc: Mapping[str, Any]) -> int | None:
    try:
        return int(doc["num_gpus"])
    except (KeyError, TypeError, ValueError):
        return None


def _doc_entries(doc: Mapping[str, Any]) -> list[Mapping[str, Any]]:
    gpus = doc.get("gpus")
    if not isinstance(gpus, Sequence) or isinstance(gpus, (str, bytes)):
        return []
    return [e for e in gpus if isinstance(e, Mapping)]


def _entry_stages(entry: Mapping[str, Any]) -> list[Any]:
    stages = entry.get("stages")
    if not isinstance(stages, Sequence) or isinstance(stages, (str, bytes)):
        return []
    return list(stages)


@rule(
    "S001",
    severity=Severity.ERROR,
    pack="schedule",
    title="every graph operator must be placed",
    requires=("graph", "schedule"),
    hint="Alg. 1/3 must assign every operator to a GPU; re-run the "
    "spatial mapping over the full graph",
)
def check_all_placed(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.graph is not None and ctx.schedule is not None
    missing = [v for v in ctx.graph.names if v not in ctx.schedule]
    if missing:
        shown = ", ".join(repr(v) for v in missing[:5])
        if len(missing) > 5:
            shown += f", ... ({len(missing) - 5} more)"
        yield Finding(
            f"{len(missing)} operator(s) not scheduled: {shown}",
            location=f"op:{missing[0]}",
        )


@rule(
    "S002",
    severity=Severity.ERROR,
    pack="schedule",
    title="schedule must only reference graph operators",
    requires=("graph", "schedule"),
    hint="the schedule was produced for a different graph, or operator "
    "names were renamed after scheduling",
)
def check_known_ops(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.graph is not None and ctx.schedule is not None
    for op in ctx.schedule.operators():
        if op not in ctx.graph:
            yield Finding(
                f"schedule references unknown operator {op!r}",
                location=f"op:{op}",
            )


@rule(
    "S003",
    severity=Severity.ERROR,
    pack="schedule",
    title="each operator placed exactly once (document)",
    requires=("schedule_doc",),
    hint="remove the duplicate placement; an operator runs on exactly "
    "one GPU in exactly one stage",
)
def check_doc_duplicates(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.schedule_doc is not None
    seen: dict[str, str] = {}  # op name -> first location
    for ei, entry in enumerate(_doc_entries(ctx.schedule_doc)):
        gpu = entry.get("gpu", ei)
        for si, stage in enumerate(_entry_stages(entry)):
            if not isinstance(stage, Sequence) or isinstance(stage, (str, bytes)):
                continue  # S005's problem
            for op in stage:
                if not isinstance(op, str):
                    continue  # S005's problem
                where = f"gpu:{gpu}/stage:{si}"
                if op in seen:
                    yield Finding(
                        f"operator {op!r} placed twice: {seen[op]} and {where}",
                        location=f"op:{op}",
                    )
                else:
                    seen[op] = where


@rule(
    "S004",
    severity=Severity.ERROR,
    pack="schedule",
    title="GPU count and indices must be valid (document)",
    requires=("schedule_doc",),
    hint="GPU indices must be unique integers in [0, num_gpus)",
)
def check_doc_gpus(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.schedule_doc
    assert doc is not None
    num_gpus = _doc_num_gpus(doc)
    if num_gpus is None:
        yield Finding("schedule document has no integer 'num_gpus' field")
        return
    if num_gpus < 1:
        yield Finding(f"schedule declares {num_gpus} GPUs; need at least one")
        return
    seen: set[int] = set()
    for ei, entry in enumerate(_doc_entries(doc)):
        raw = entry.get("gpu")
        try:
            gpu = int(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            continue  # missing/malformed 'gpu' key is S005's problem
        if not (0 <= gpu < num_gpus):
            yield Finding(
                f"entry {ei} places stages on GPU {gpu} but the schedule "
                f"declares {num_gpus} GPU(s)",
                location=f"gpu:{gpu}",
            )
        elif gpu in seen:
            yield Finding(
                f"duplicate entry for GPU {gpu}: stage order across split "
                "entries is ambiguous",
                location=f"gpu:{gpu}",
            )
        seen.add(gpu)


@rule(
    "S005",
    severity=Severity.ERROR,
    pack="schedule",
    title="stages must be well-formed (document)",
    requires=("schedule_doc",),
    hint="each 'gpus' entry needs an integer 'gpu' and a list of "
    "non-empty stages of operator-name strings",
)
def check_doc_stages(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.schedule_doc
    assert doc is not None
    gpus = doc.get("gpus")
    if not isinstance(gpus, Sequence) or isinstance(gpus, (str, bytes)):
        yield Finding("schedule document has no 'gpus' list")
        return
    for ei, raw_entry in enumerate(gpus):
        if not isinstance(raw_entry, Mapping):
            yield Finding(f"entry {ei} of 'gpus' is not an object")
            continue
        raw_gpu = raw_entry.get("gpu")
        if not isinstance(raw_gpu, int) or isinstance(raw_gpu, bool):
            yield Finding(f"entry {ei} of 'gpus' has no integer 'gpu' field")
        where = f"gpu:{raw_gpu if isinstance(raw_gpu, int) else ei}"
        stages = raw_entry.get("stages")
        if not isinstance(stages, Sequence) or isinstance(stages, (str, bytes)):
            yield Finding(f"entry {ei} of 'gpus' has no 'stages' list", location=where)
            continue
        for si, stage in enumerate(stages):
            loc = f"{where}/stage:{si}"
            if not isinstance(stage, Sequence) or isinstance(stage, (str, bytes)):
                yield Finding(
                    f"stage {si} of entry {ei} is not a list of operator names",
                    location=loc,
                )
                continue
            if len(stage) == 0:
                yield Finding(f"stage {si} of entry {ei} is empty", location=loc)
            for op in stage:
                if not isinstance(op, str):
                    yield Finding(
                        f"stage {si} of entry {ei} holds a non-string "
                        f"operator name {op!r}",
                        location=loc,
                    )


@rule(
    "S006",
    severity=Severity.ERROR,
    pack="schedule",
    title="operators within a stage must be independent",
    requires=("graph", "schedule"),
    hint="Alg. 2 may only group operators with no directed path "
    "between them; split the stage",
)
def check_stage_independence(ctx: LintContext) -> Iterator[Finding]:
    graph, schedule = ctx.graph, ctx.schedule
    assert graph is not None and schedule is not None
    for st in schedule.all_stages():
        placed = [op for op in st.ops if op in graph]
        if len(placed) < 2:
            continue
        group = set(placed)
        reported: set[tuple[str, str]] = set()
        for op in placed:
            for other in sorted(graph.descendants(op) & group):
                if (op, other) not in reported:
                    reported.add((op, other))
                    yield Finding(
                        f"stage {st.ops} on GPU {st.gpu} contains dependent "
                        f"operators: {op!r} precedes {other!r}",
                        location=f"gpu:{st.gpu}/op:{op}",
                    )


@rule(
    "S007",
    severity=Severity.ERROR,
    pack="schedule",
    title="intra-GPU stage order must respect dependencies",
    requires=("graph", "schedule"),
    hint="reorder the GPU's stage list so producers come before "
    "consumers (a topological order always exists)",
)
def check_intra_gpu_order(ctx: LintContext) -> Iterator[Finding]:
    graph, schedule = ctx.graph, ctx.schedule
    assert graph is not None and schedule is not None
    for u, v, _w in graph.edges():
        if u not in schedule or v not in schedule:
            continue
        if schedule.gpu_of(u) != schedule.gpu_of(v):
            continue
        iu, iv = schedule.stage_index_of(u), schedule.stage_index_of(v)
        if iu > iv:
            yield Finding(
                f"operator {u!r} must precede {v!r} on GPU "
                f"{schedule.gpu_of(u)} but is scheduled in a later stage "
                f"({iu} > {iv})",
                location=f"edge:{u}->{v}",
            )


@rule(
    "S008",
    severity=Severity.ERROR,
    pack="schedule",
    title="stage graph must be acyclic",
    requires=("graph", "schedule"),
    hint="the schedule deadlocks: two GPUs each wait for a stage of the "
    "other; move one of the offending operators",
)
def check_stage_graph_acyclic(ctx: LintContext) -> Iterator[Finding]:
    graph, schedule = ctx.graph, ctx.schedule
    assert graph is not None and schedule is not None
    stages = schedule.all_stages()
    index = {id(st): i for i, st in enumerate(stages)}
    op_stage = {op: index[id(st)] for st in stages for op in st.ops}
    succ: list[set[int]] = [set() for _ in stages]
    for gpu in range(schedule.num_gpus):
        chain = schedule.stages_on(gpu)
        for a, b in zip(chain, chain[1:]):
            succ[index[id(a)]].add(index[id(b)])
    for u, v, _w in graph.edges():
        if u not in op_stage or v not in op_stage:
            continue
        su, sv = op_stage[u], op_stage[v]
        if su != sv:  # same-stage dependence is S006's finding
            succ[su].add(sv)
    indeg = [0] * len(stages)
    for s in range(len(stages)):
        for t in succ[s]:
            indeg[t] += 1
    ready = [i for i, d in enumerate(indeg) if d == 0]
    seen = 0
    while ready:
        x = ready.pop()
        seen += 1
        for t in succ[x]:
            indeg[t] -= 1
            if indeg[t] == 0:
                ready.append(t)
    if seen != len(stages):
        stuck = [i for i, d in enumerate(indeg) if d > 0]
        involved = sorted({stages[i].gpu for i in stuck})
        yield Finding(
            f"stage graph contains a cycle through {len(stuck)} stage(s) on "
            f"GPU(s) {involved}: no legal execution order exists "
            "(deadlocked schedule)",
            location=f"gpu:{involved[0]}" if involved else None,
        )


@rule(
    "S009",
    severity=Severity.WARNING,
    pack="schedule",
    title="stage width must respect the window bound",
    requires=("schedule",),
    hint="Alg. 2 groups at most w operators per stage (one CUDA stream "
    "each); wider stages oversubscribe the device",
)
def check_window(ctx: LintContext) -> Iterator[Finding]:
    schedule = ctx.schedule
    assert schedule is not None
    if ctx.window is None or ctx.window <= 0:
        return
    for gpu in range(schedule.num_gpus):
        for si, st in enumerate(schedule.stages_on(gpu)):
            if len(st) > ctx.window:
                yield Finding(
                    f"stage {si} on GPU {gpu} holds {len(st)} operators, "
                    f"exceeding the window bound w={ctx.window}",
                    location=f"gpu:{gpu}/stage:{si}",
                )


@rule(
    "S010",
    severity=Severity.WARNING,
    pack="schedule",
    title="no idle GPUs",
    requires=("schedule",),
    hint="an idle GPU is paid-for capacity doing nothing; lower "
    "num_gpus or rebalance the placement",
)
def check_idle_gpus(ctx: LintContext) -> Iterator[Finding]:
    schedule = ctx.schedule
    assert schedule is not None
    if schedule.num_gpus <= 1:
        return
    used = set(schedule.used_gpus())
    for gpu in range(schedule.num_gpus):
        if gpu not in used:
            yield Finding(
                f"GPU {gpu} hosts no operators (idle)", location=f"gpu:{gpu}"
            )


@rule(
    "S011",
    severity=Severity.INFO,
    pack="schedule",
    title="mergeable singleton stages",
    requires=("graph", "schedule"),
    hint="consecutive singleton stages of independent operators could "
    "share a stage and overlap (Alg. 2 would group them)",
)
def check_singleton_stages(ctx: LintContext) -> Iterator[Finding]:
    graph, schedule = ctx.graph, ctx.schedule
    assert graph is not None and schedule is not None
    for gpu in range(schedule.num_gpus):
        chain = schedule.stages_on(gpu)
        pairs = 0
        example: tuple[str, str] | None = None
        for a, b in zip(chain, chain[1:]):
            if len(a) != 1 or len(b) != 1:
                continue
            ua, ub = a.ops[0], b.ops[0]
            if ua in graph and ub in graph and graph.independent((ua, ub)):
                pairs += 1
                if example is None:
                    example = (ua, ub)
        if pairs and example is not None:
            yield Finding(
                f"GPU {gpu} runs {pairs} pair(s) of independent operators in "
                f"consecutive singleton stages (e.g. {example[0]!r} then "
                f"{example[1]!r})",
                location=f"gpu:{gpu}",
            )


@rule(
    "S012",
    severity=Severity.WARNING,
    pack="schedule",
    title="critical path should stay on one GPU",
    requires=("graph", "schedule"),
    hint="HIOS-LP's whole point: co-locate longest-path operators so "
    "the critical path pays no transfer time",
)
def check_critical_path_crossings(ctx: LintContext) -> Iterator[Finding]:
    graph, schedule = ctx.graph, ctx.schedule
    assert graph is not None and schedule is not None
    if not graph.is_dag():
        return  # G001's problem
    path = critical_path(graph, include_transfers=True)
    crossings: list[tuple[str, str]] = []
    for u, v in zip(path, path[1:]):
        if u in schedule and v in schedule and schedule.gpu_of(u) != schedule.gpu_of(v):
            crossings.append((u, v))
    if crossings:
        shown = ", ".join(f"{u}->{v}" for u, v in crossings[:4])
        if len(crossings) > 4:
            shown += f", ... ({len(crossings) - 4} more)"
        yield Finding(
            f"{len(crossings)} of {max(len(path) - 1, 0)} critical-path "
            f"edge(s) cross GPUs: {shown}",
            location=f"edge:{crossings[0][0]}->{crossings[0][1]}",
        )
