"""Per-figure experiment drivers reproducing the paper's evaluation.

Each ``figNN_*`` module exposes ``run(config) -> SeriesResult``; the
``EXPERIMENTS`` registry maps figure ids to those drivers (Fig. 12 and
Fig. 14 take a ``model=`` argument and are registered per model).
"""

from . import (
    fig01_contention,
    fig02_comm_ratio,
    fig07_num_gpus,
    fig08_num_operators,
    fig09_num_dependencies,
    fig10_parallelism_degree,
    fig11_comm_overhead,
    fig12_real_models,
    fig13_gain_analysis,
    fig14_scheduling_cost,
)
from .config import ALGORITHM_ORDER, ExperimentConfig, default_config
from .realmodels import ModelRun, default_profiler, model_sizes, run_model
from .reporting import SeriesResult, format_table
from .simsweep import sweep_random_dags

EXPERIMENTS = {
    "fig1": fig01_contention.run,
    "fig2": fig02_comm_ratio.run,
    "fig7": fig07_num_gpus.run,
    "fig8": fig08_num_operators.run,
    "fig9": fig09_num_dependencies.run,
    "fig10": fig10_parallelism_degree.run,
    "fig11": fig11_comm_overhead.run,
    "fig12_inception": lambda config=None: fig12_real_models.run(config, "inception_v3"),
    "fig12_nasnet": lambda config=None: fig12_real_models.run(config, "nasnet"),
    "fig13": fig13_gain_analysis.run,
    "fig14_inception": lambda config=None: fig14_scheduling_cost.run(config, "inception_v3"),
    "fig14_nasnet": lambda config=None: fig14_scheduling_cost.run(config, "nasnet"),
}

__all__ = [
    "ALGORITHM_ORDER",
    "EXPERIMENTS",
    "ExperimentConfig",
    "ModelRun",
    "SeriesResult",
    "default_config",
    "default_profiler",
    "format_table",
    "model_sizes",
    "run_model",
    "sweep_random_dags",
]
