"""Shared machinery for the Section VI real-model experiments.

Builds Inception-v3 / NASNet at a given input size, profiles them on
the dual-A40 platform, schedules with each algorithm, and *executes*
the schedule on the discrete-event engine — the measured latency, not
the scheduler's prediction, is what Figs. 12-14 report, exactly like
the paper's testbed runs.

:func:`run_real_model_series` threads those runs through the
:mod:`repro.sweep` engine (one :class:`~repro.sweep.units.WorkUnit`
per case × algorithm) so Figs. 12-14 share the parallel dispatch,
result cache and progress reporting of the random-DAG sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.api import schedule_graph
from ..core.result import ScheduleResult
from ..costmodel.profile import CostProfile
from ..models.builder import ModelGraph
from ..models.inception import inception_v3
from ..models.nasnet import nasnet
from ..models.randwire import randwire
from ..models.resnet import resnet50
from ..substrate.engine import ExecutionTrace
from ..substrate.platform import dual_a40
from ..substrate.profiler import PlatformProfiler
from ..sweep import RealModelSpec, WorkUnit
from .config import ExperimentConfig, default_config
from .reporting import SeriesResult

__all__ = [
    "MODEL_BUILDERS",
    "ModelRun",
    "default_profiler",
    "export_unit_traces",
    "run_model",
    "run_real_model_series",
    "model_sizes",
]

MODEL_BUILDERS: dict[str, Callable[[int], ModelGraph]] = {
    "inception_v3": inception_v3,
    "nasnet": nasnet,
    # contrast workloads beyond the paper's two benchmarks
    "resnet50": resnet50,
    "randwire": randwire,
}

# input-size sweeps (the paper goes from the default size up to 2^K)
_SIZES_FAST = {
    "inception_v3": (299, 512, 1024),
    "nasnet": (331, 512, 1024),
    "resnet50": (224, 512, 1024),
    "randwire": (224, 512, 1024),
}
_SIZES_FULL = {
    "inception_v3": (299, 448, 640, 896, 1280, 2048),
    "nasnet": (331, 448, 640, 896, 1280, 2048),
    "resnet50": (224, 448, 640, 896, 1280, 2048),
    "randwire": (224, 448, 640, 896, 1280, 2048),
}


def model_sizes(model: str, config: ExperimentConfig) -> tuple[int, ...]:
    table = _SIZES_FAST if config.fast else _SIZES_FULL
    try:
        return table[model]
    except KeyError:
        raise ValueError(f"unknown model {model!r}") from None


def default_profiler(num_gpus: int = 2) -> PlatformProfiler:
    """The paper's primary testbed: dual A40 over an NVLink bridge."""
    return PlatformProfiler(dual_a40(num_gpus))


@dataclass(frozen=True)
class ModelRun:
    """One (model, size, algorithm) measurement."""

    model: str
    input_size: int
    algorithm: str
    result: ScheduleResult
    trace: ExecutionTrace

    @property
    def predicted_ms(self) -> float:
        return self.result.latency

    @property
    def measured_ms(self) -> float:
        return self.trace.latency


def run_model(
    model: str,
    input_size: int,
    algorithm: str,
    profiler: PlatformProfiler | None = None,
    window: int = 3,
    overlap_launch: bool = False,
    profile: CostProfile | None = None,
    **schedule_kwargs: object,
) -> ModelRun:
    """Profile, schedule, and execute one configuration.

    ``profile`` short-circuits the profiling step when the caller has
    already priced the model (reused across algorithms in sweeps).
    """
    pp = profiler or default_profiler()
    if profile is None:
        graph_model = MODEL_BUILDERS[model](input_size)
        profile = pp.profile(graph_model)
    if algorithm in ("hios-lp", "hios-mr"):
        schedule_kwargs.setdefault("window", window)
    result = schedule_graph(profile, algorithm, **schedule_kwargs)
    trace = pp.engine(overlap_launch=overlap_launch).run(profile.graph, result.schedule)
    return ModelRun(
        model=model,
        input_size=input_size,
        algorithm=algorithm,
        result=result,
        trace=trace,
    )


def export_unit_traces(units: Sequence[WorkUnit], trace_dir: str) -> list[str]:
    """Replay every ``measured`` unit and export a Chrome trace each.

    Payloads may have come out of the result cache without ever running
    in this process; units are pure functions of their spec, so the
    engine run is reproduced deterministically
    (:func:`repro.sweep.replay_unit_trace`) and exported as
    ``{figure}-{model}-{size}-{algorithm}.trace.json`` under
    ``trace_dir``.  Returns the written paths.
    """
    from pathlib import Path

    from ..obs import save_chrome_trace
    from ..sweep import replay_unit_trace

    out_dir = Path(trace_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[str] = []
    seen: set[str] = set()
    for unit in units:
        if unit.kind != "measured" or not isinstance(unit.spec, RealModelSpec):
            continue
        name = (
            f"{unit.figure}-{unit.spec.model}-{unit.spec.input_size}"
            f"-{unit.algorithm}.trace.json"
        )
        if name in seen:
            continue
        seen.add(name)
        trace, op_gpu = replay_unit_trace(unit)
        path = out_dir / name
        save_chrome_trace(
            trace,
            op_gpu,
            path,
            process_name=f"{unit.spec.model}@{unit.spec.input_size}",
        )
        written.append(str(path))
    return written


def run_real_model_series(
    figure: str,
    title: str,
    x_label: str,
    x: Sequence[object],
    cases: Sequence[tuple[str, int]],
    algorithms: Sequence[str],
    kind: str,
    value_key: str,
    config: ExperimentConfig | None = None,
    notes: str = "",
    num_gpus: int = 2,
    y_label: str = "inference latency (ms)",
) -> SeriesResult:
    """One real-model figure as a unit sweep.

    ``cases[i]`` is the ``(model, input_size)`` behind ``x[i]``; every
    case runs under every algorithm as one :class:`WorkUnit` of
    ``kind`` (``"measured"`` for engine latency, ``"sched-cost"`` for
    the Fig. 14 accounting), and ``series[alg][i] = payload[value_key]``.

    ``sched-cost`` payloads include the algorithm's *wall time*, so for
    publication runs of Fig. 14 prefer ``jobs=1`` (parallel workers
    timesharing a core inflate each other's wall clocks); the
    deterministic figures (12/13) are safe at any job count.
    """
    from .simsweep import dispatch_units

    cfg = config or default_config()
    units: list[WorkUnit] = []
    index: dict[tuple[int, str], int] = {}
    for ci, (model, size) in enumerate(cases):
        spec = RealModelSpec(model=model, input_size=size, num_gpus=num_gpus)
        for alg in algorithms:
            kwargs: tuple[tuple[str, object], ...] = (
                (("window", cfg.window),)
                if alg in ("hios-lp", "hios-mr")
                else ()
            )
            index[(ci, alg)] = len(units)
            units.append(
                WorkUnit(
                    figure=figure,
                    x=x[ci],
                    instance=0,
                    algorithm=alg,
                    spec=spec,
                    schedule_kwargs=kwargs,
                    kind=kind,
                )
            )
    payloads, stats = dispatch_units(cfg, figure, units)
    if cfg.trace_dir and kind == "measured":
        export_unit_traces(units, cfg.trace_dir)

    series = {
        alg: [payloads[index[(ci, alg)]][value_key] for ci in range(len(cases))]
        for alg in algorithms
    }
    return SeriesResult(
        figure=figure,
        title=title,
        x_label=x_label,
        y_label=y_label,
        x=list(x),
        series=series,
        notes=notes,
        extras={"sweep": stats.to_dict()},
    )
