"""Fig. 9 — inference latency vs. number of inter-operator dependencies.

Paper shape: as dependencies grow from 400 to 600 on a 200-operator
model, HIOS-LP's speedup over sequential declines (2.06 -> 1.64 in the
paper) and HIOS-MR's as well (1.35 -> 1.19): denser dependencies leave
fewer independent operators to spread across GPUs.
"""

from __future__ import annotations

from ..sweep import RandomDagSpec
from .config import ExperimentConfig, default_config
from .reporting import SeriesResult
from .simsweep import sweep_random_dags

__all__ = ["run"]

DEPENDENCY_COUNTS = (400, 450, 500, 550, 600)


def run(config: ExperimentConfig | None = None) -> SeriesResult:
    cfg = config or default_config()
    return sweep_random_dags(
        figure="fig9",
        title="latency vs number of dependencies (200 ops, 4 GPUs)",
        x_label="num_edges",
        x_values=DEPENDENCY_COUNTS,
        spec_factory=lambda e, seed: RandomDagSpec(
            seed=seed, num_gpus=cfg.num_gpus, num_edges=int(e)
        ),
        config=cfg,
    )
