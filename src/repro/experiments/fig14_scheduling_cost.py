"""Fig. 14 — time cost of scheduling optimization.

The paper's scheduling cost counts everything an operator of the
scheduler pays: profiling each single operator, profiling every group
of concurrent operators the algorithm considers, measuring each
possible inter-GPU transfer, plus the scheduling algorithm's own run
time.  We reproduce that accounting: a recording wrapper around the
concurrency model captures every *distinct* concurrent set an
algorithm prices, and the simulated measurement bill is
``repetitions x (sum of op times + sum of transfer times + sum of
unique group times)`` — the paper averages 36 runs per measurement.

Paper shape: IOS's cost grows steeply with input size (it profiles
exponentially many candidate groups of ever-slower kernels), while
HIOS-LP and HIOS-MR grow much more slowly and stay under ~20 minutes
for Inception-v3.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..core.api import schedule_graph
from ..core.graph import Operator
from ..costmodel.concurrency import ConcurrencyModel
from ..costmodel.profile import CostProfile
from .config import ExperimentConfig, default_config
from .realmodels import model_sizes, run_real_model_series
from .reporting import SeriesResult

__all__ = ["run", "MeasurementRecorder", "scheduling_cost_minutes", "ALGORITHMS"]

ALGORITHMS = ("ios", "hios-mr", "hios-lp")
REPETITIONS = 36  # paper: every measured data point averages 36 runs


class MeasurementRecorder:
    """Concurrency-model wrapper recording every distinct multi-operator
    set priced during scheduling — the groups the paper's profiler would
    have to execute on hardware."""

    def __init__(self, inner: ConcurrencyModel) -> None:
        self._inner = inner
        self.groups: dict[frozenset[str], float] = {}

    def duration(self, ops: Sequence[Operator]) -> float:
        d = self._inner.duration(ops)
        if len(ops) > 1:
            self.groups.setdefault(frozenset(op.name for op in ops), d)
        return d

    @property
    def group_measurement_ms(self) -> float:
        return sum(self.groups.values())


def scheduling_cost_minutes(
    profile: CostProfile,
    algorithm: str,
    window: int = 3,
    repetitions: int = REPETITIONS,
    **schedule_kwargs: object,
) -> tuple[float, dict[str, float]]:
    """Total scheduling-optimization cost in minutes for one run.

    Returns (minutes, breakdown) where the breakdown separates operator
    profiling, transfer profiling, group profiling and algorithm time.
    """
    recorder = MeasurementRecorder(profile.concurrency)
    recording_profile = replace(profile, concurrency=recorder)
    if algorithm in ("hios-lp", "hios-mr"):
        schedule_kwargs.setdefault("window", window)
    result = schedule_graph(recording_profile, algorithm, **schedule_kwargs)

    graph = profile.graph
    op_ms = repetitions * sum(op.cost for op in graph.operators())
    transfer_ms = repetitions * sum(w for _u, _v, w in graph.edges())
    group_ms = repetitions * recorder.group_measurement_ms
    algo_minutes = result.scheduling_time / 60.0
    breakdown = {
        "op_profiling_min": op_ms / 60000.0,
        "transfer_profiling_min": transfer_ms / 60000.0,
        "group_profiling_min": group_ms / 60000.0,
        "algorithm_min": algo_minutes,
    }
    return sum(breakdown.values()), breakdown


def run(
    config: ExperimentConfig | None = None, model: str = "inception_v3"
) -> SeriesResult:
    """Fig. 14 as a unit sweep (``kind="sched-cost"``).

    The reported minutes include the algorithm's *wall time*, so this
    figure is a measurement: prefer ``jobs=1`` for publication numbers
    (see :func:`~repro.experiments.realmodels.run_real_model_series`).
    """
    cfg = config or default_config()
    sizes = model_sizes(model, cfg)
    return run_real_model_series(
        figure="fig14",
        title=f"time cost of scheduling optimization for {model}",
        x_label="input_size",
        x=list(sizes),
        cases=[(model, size) for size in sizes],
        algorithms=ALGORITHMS,
        kind="sched-cost",
        value_key="minutes",
        config=cfg,
        y_label="scheduling time (minutes)",
        notes=f"profiling billed at {REPETITIONS} repetitions per measurement "
        "+ algorithm wall time",
    )
