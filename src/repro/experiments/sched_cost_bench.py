"""Scheduling-cost micro-benchmark behind the Fig. 14 regression gate.

The incremental engine (:mod:`repro.core.fasteval`) claims the
schedulers themselves got faster.  This module makes that claim
checkable on any machine:

* :func:`measure` times the pure algorithm wall time (no profiling
  bill, unlike :mod:`.fig14_scheduling_cost`) of one scheduler over the
  largest Fig. 14 workloads, in both engine modes — ``fast`` (the
  default incremental paths) and ``reference`` (``fast=False`` plus
  ``stage_time_cache=False``, i.e. the retained from-scratch loops that
  match the pre-engine code);
* :func:`calibration_seconds` times a fixed pure-Python workload so a
  committed baseline can be rescaled to the measuring machine's speed;
* ``scripts/check_sched_regression.py`` compares a fresh
  :func:`measure` run against the committed
  ``benchmarks/results/BENCH_scheduling_cost.json`` and fails CI on a
  >25 % regression of the (calibration-normalized) fast median, or if
  the fast/reference speedup falls below the floor.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import replace
from typing import Callable

from ..core.api import schedule_graph
from ..costmodel.profile import CostProfile
from .realmodels import MODEL_BUILDERS, default_profiler

__all__ = [
    "WORKLOADS",
    "calibration_seconds",
    "measure",
]

# the largest Fig. 14 inputs of the two headline models: where the
# quadratic-by-reconstruction cost used to hurt the most
WORKLOADS: tuple[tuple[str, int], ...] = (("inception_v3", 1024), ("nasnet", 1024))


def calibration_seconds(scale: int = 120_000) -> float:
    """Wall time of a fixed, allocation-heavy pure-Python workload.

    The schedulers are interpreter-bound, so this tracks how fast the
    measuring machine runs them; dividing a committed baseline's times
    by the ratio of calibrations transfers the baseline across
    machines (coarsely — which is why the gate's threshold is 25 %).
    """
    t0 = time.perf_counter()
    acc = 0.0
    d: dict[tuple[int, int], float] = {}
    for i in range(scale):
        key = (i & 1023, i % 37)
        prev = d.get(key)
        acc += prev if prev is not None else float(i)
        d[key] = acc % 1e9
    return time.perf_counter() - t0


def _median_wall_seconds(fn: Callable[[], object], repeats: int) -> float:
    samples: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def measure(
    algorithm: str = "hios-lp",
    repeats: int = 3,
    workloads: tuple[tuple[str, int], ...] = WORKLOADS,
    modes: tuple[str, ...] = ("fast", "reference"),
) -> dict[str, object]:
    """Median scheduling wall time per workload, per engine mode.

    Returns a JSON-ready dict::

        {"algorithm": ..., "repeats": ..., "calibration_s": ...,
         "workloads": {"nasnet@1024": {"fast_median_s": ...,
                                       "reference_median_s": ...}, ...}}

    The two modes run the *same* algorithm to the same schedule (the
    differential tests assert bit-identity); only the evaluation engine
    differs, so their ratio is a machine-independent speedup.
    """
    profiler = default_profiler()
    out: dict[str, dict[str, float]] = {}
    for model, size in workloads:
        profile = profiler.profile(MODEL_BUILDERS[model](size))
        entry: dict[str, float] = {}
        for mode in modes:
            prof: CostProfile
            if mode == "fast":
                prof, fast = profile, True
            elif mode == "reference":
                prof, fast = replace(profile, stage_time_cache=False), False
            else:
                raise ValueError(f"unknown mode {mode!r}")
            entry[f"{mode}_median_s"] = _median_wall_seconds(
                lambda p=prof, f=fast: schedule_graph(p, algorithm, fast=f), repeats
            )
        out[f"{model}@{size}"] = entry
    return {
        "algorithm": algorithm,
        "repeats": repeats,
        "calibration_s": calibration_seconds(),
        "workloads": out,
    }
