"""Fig. 1 — parallel vs. sequential execution of two identical convs.

The Section II-A motivation experiment: a convolution with 48 input
channels, a 5x5 kernel and stride 1 is run twice on one A40, once
sequentially and once concurrently, for input sizes 8x8 .. 1024x1024.
The reported ratio is ``parallel time / sequential time``: below 1.0
while the kernel under-occupies the device (<= 64x64), above 1.0 once
it saturates (>= 128x128) — the crossover that motivates inter-GPU
operator parallelism for large operators.

This driver prices eight closed-form analytic points in microseconds
of wall time, so it deliberately bypasses the :mod:`repro.sweep`
engine (no scheduling work to parallelize or cache).
"""

from __future__ import annotations

from ..core.graph import Operator
from ..costmodel.concurrency import SaturationConcurrencyModel
from ..models.ops import Conv2d, TensorShape
from ..substrate.device import A40, GpuDeviceModel, KernelWork
from .config import ExperimentConfig
from .reporting import SeriesResult

__all__ = ["run", "conv_operator", "INPUT_SIZES"]

INPUT_SIZES = (8, 16, 32, 64, 128, 256, 512, 1024)
CHANNELS = 48


def conv_operator(
    size: int, device: GpuDeviceModel = A40, channels: int = CHANNELS
) -> Operator:
    """The benchmark convolution priced on ``device``: ``channels``
    input channels of ``size x size`` pixels, 5x5 kernel, stride 1,
    same output channel count."""
    spec = Conv2d(out_channels=channels, kernel=5, stride=1)
    x = TensorShape(channels, size, size)
    out = spec.infer([x])
    flops, rd, wr, blocks = spec.work_items([x], out)
    work = KernelWork(flops=flops, bytes_read=rd, bytes_written=wr, blocks=blocks)
    return Operator(
        f"conv{size}",
        cost=device.kernel_time(work),
        occupancy=device.occupancy(work),
        output_bytes=out.bytes,
        kind="conv",
    )


def run(
    config: ExperimentConfig | None = None,
    device: GpuDeviceModel = A40,
    contention_penalty: float = 0.06,
    stream_overhead: float = 0.15,
) -> SeriesResult:
    """Latency ratio between parallel and sequential execution of the
    two identical convolutions, per input size."""
    del config  # no sweep-size knobs; kept for driver uniformity
    model = SaturationConcurrencyModel(contention_penalty, stream_overhead)
    ratios = []
    occupancies = []
    for size in INPUT_SIZES:
        op = conv_operator(size, device)
        second = Operator(
            op.name + "_b",
            cost=op.cost,
            occupancy=op.occupancy,
            output_bytes=op.output_bytes,
            kind=op.kind,
        )
        parallel = model.duration([op, second])
        sequential = 2.0 * op.cost
        ratios.append(parallel / sequential)
        occupancies.append(op.occupancy)
    return SeriesResult(
        figure="fig1",
        title="parallel/sequential latency ratio of two identical 5x5 convs (A40)",
        x_label="input_size",
        y_label="latency ratio",
        x=list(INPUT_SIZES),
        series={"ratio": ratios, "occupancy": occupancies},
        notes="ratio < 1: concurrency pays off; > 1: contention (crossover "
        "expected between 64 and 128, as in the paper)",
    )
