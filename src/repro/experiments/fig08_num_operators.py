"""Fig. 8 — inference latency vs. number of operators (100..400).

Paper shape: HIOS-LP holds a ~2x speedup over sequential across model
sizes (2.01-2.12), ~1.8-1.9x over IOS and ~1.5x over HIOS-MR; the
intra-GPU pass (Alg. 2) contributes a mid-single-digit percentage on
top of LP-based inter-GPU scheduling and roughly twice that on MR.
"""

from __future__ import annotations

from ..sweep import RandomDagSpec
from .config import ExperimentConfig, default_config
from .reporting import SeriesResult
from .simsweep import sweep_random_dags

__all__ = ["run"]

OPERATOR_COUNTS_FULL = (100, 150, 200, 250, 300, 350, 400)
OPERATOR_COUNTS_FAST = (100, 200, 300, 400)


def run(config: ExperimentConfig | None = None) -> SeriesResult:
    cfg = config or default_config()
    counts = OPERATOR_COUNTS_FAST if cfg.fast else OPERATOR_COUNTS_FULL
    return sweep_random_dags(
        figure="fig8",
        title="latency vs number of operators (4 GPUs, 14 layers)",
        x_label="num_ops",
        x_values=counts,
        spec_factory=lambda n, seed: RandomDagSpec(
            seed=seed, num_gpus=cfg.num_gpus, num_ops=int(n)
        ),
        config=cfg,
    )
