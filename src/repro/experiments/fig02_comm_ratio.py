"""Fig. 2 — transfer/computation time ratio on three dual-GPU platforms.

The Section II-B motivation experiment: for the same 48-channel 5x5
convolution, compare the time to move its input tensor between two
GPUs against the convolution's execution time, on

* dual A40 over an NVLink bridge,
* dual RTX A5500 over an NVLink bridge,
* dual V100S over PCIe Gen3.

Paper shape: the NVLink platforms sit at a visibly lower ratio than the
PCIe platform, and the ratio is far from negligible everywhere — the
reason HIOS must co-locate dependent operators.

Like Fig. 1, this driver evaluates closed-form analytic ratios in
microseconds of wall time, so it deliberately bypasses the
:mod:`repro.sweep` engine (no scheduling work to parallelize or cache).
"""

from __future__ import annotations

from ..models.ops import DTYPE_BYTES, TensorShape
from ..substrate.platform import MultiGpuPlatform, dual_a40, dual_a5500, dual_v100s
from .config import ExperimentConfig
from .fig01_contention import CHANNELS, INPUT_SIZES, conv_operator
from .reporting import SeriesResult

__all__ = ["run", "PLATFORMS"]

PLATFORMS: tuple[MultiGpuPlatform, ...] = (dual_a40(), dual_a5500(), dual_v100s())


def run(config: ExperimentConfig | None = None) -> SeriesResult:
    """Ratio of input-tensor transfer time to convolution time, per
    platform and input size."""
    del config
    series: dict[str, list[float]] = {}
    for platform in PLATFORMS:
        ratios = []
        for size in INPUT_SIZES:
            op = conv_operator(size, platform.device)
            input_bytes = TensorShape(CHANNELS, size, size).bytes
            assert input_bytes == CHANNELS * size * size * DTYPE_BYTES
            ratios.append(platform.transfer_time(input_bytes) / op.cost)
        series[platform.name] = ratios
    return SeriesResult(
        figure="fig2",
        title="input transfer time / conv computation time per platform",
        x_label="input_size",
        y_label="time ratio",
        x=list(INPUT_SIZES),
        series=series,
        notes="NVLink platforms should sit below the PCIe platform",
    )
