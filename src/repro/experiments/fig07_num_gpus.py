"""Fig. 7 — inference latency vs. number of GPUs (2..12).

Paper shape: HIOS-LP's speedup over sequential grows from ~1.4 at two
GPUs to ~3.8 at twelve, while HIOS-MR plateaus below ~1.5-1.7 and the
single-GPU algorithms (sequential, IOS) stay flat by construction.
"""

from __future__ import annotations

from ..sweep import RandomDagSpec
from .config import ExperimentConfig, default_config
from .reporting import SeriesResult
from .simsweep import sweep_random_dags

__all__ = ["run"]

GPU_COUNTS = (2, 4, 6, 8, 10, 12)


def run(config: ExperimentConfig | None = None) -> SeriesResult:
    cfg = config or default_config()
    # only num_gpus varies with x, so the single-GPU baselines
    # canonicalize to one cache key per seed and run once for the
    # whole sweep (unit-level dedup in the sweep engine)
    return sweep_random_dags(
        figure="fig7",
        title="latency vs number of GPUs (200 ops, 14 layers, |E|=2|V|)",
        x_label="num_gpus",
        x_values=GPU_COUNTS,
        spec_factory=lambda m, seed: RandomDagSpec(seed=seed, num_gpus=int(m)),
        config=cfg,
    )
