"""Fig. 13 — performance-gain analysis at small and large input sizes.

All six algorithms run on both CNNs at their default ("small") and
largest input sizes; the engine-measured latencies dissect where
HIOS-LP's gain comes from.  Paper shape: inter-GPU LP mapping accounts
for the bulk of HIOS-LP's reduction (≈98% at large inputs, ≈82% at
small for Inception-v3; ≈100% for NASNet), and IOS's single-GPU
optimum is far from HIOS-LP's multi-GPU result for large inputs.
"""

from __future__ import annotations

from .config import ExperimentConfig, default_config
from .realmodels import MODEL_BUILDERS, default_profiler, model_sizes, run_model
from .reporting import SeriesResult

__all__ = ["run", "ALGORITHMS"]

ALGORITHMS = ("sequential", "ios", "hios-mr", "hios-lp", "inter-mr", "inter-lp")


def run(config: ExperimentConfig | None = None) -> SeriesResult:
    cfg = config or default_config()
    cases: list[tuple[str, int, str]] = []
    for model in ("inception_v3", "nasnet"):
        sizes = model_sizes(model, cfg)
        cases.append((model, sizes[0], f"{model}@{sizes[0]} (small)"))
        cases.append((model, sizes[-1], f"{model}@{sizes[-1]} (large)"))

    profiler = default_profiler()
    series: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
    labels: list[str] = []
    for model, size, label in cases:
        labels.append(label)
        profile = profiler.profile(MODEL_BUILDERS[model](size))
        for alg in ALGORITHMS:
            run_ = run_model(
                model, size, alg, profiler=profiler, window=cfg.window, profile=profile
            )
            series[alg].append(run_.measured_ms)
    return SeriesResult(
        figure="fig13",
        title="gain analysis: all algorithms at small/large inputs (dual A40)",
        x_label="benchmark",
        y_label="inference latency (ms)",
        x=labels,
        series=series,
        notes="inter-mr / inter-lp are HIOS-MR / HIOS-LP without the "
        "intra-GPU pass (Alg. 2)",
    )
