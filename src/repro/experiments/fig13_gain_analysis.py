"""Fig. 13 — performance-gain analysis at small and large input sizes.

All six algorithms run on both CNNs at their default ("small") and
largest input sizes; the engine-measured latencies dissect where
HIOS-LP's gain comes from.  Paper shape: inter-GPU LP mapping accounts
for the bulk of HIOS-LP's reduction (≈98% at large inputs, ≈82% at
small for Inception-v3; ≈100% for NASNet), and IOS's single-GPU
optimum is far from HIOS-LP's multi-GPU result for large inputs.
"""

from __future__ import annotations

from .config import ExperimentConfig, default_config
from .realmodels import model_sizes, run_real_model_series
from .reporting import SeriesResult

__all__ = ["run", "ALGORITHMS"]

ALGORITHMS = ("sequential", "ios", "hios-mr", "hios-lp", "inter-mr", "inter-lp")


def run(config: ExperimentConfig | None = None) -> SeriesResult:
    cfg = config or default_config()
    cases: list[tuple[str, int]] = []
    labels: list[str] = []
    for model in ("inception_v3", "nasnet"):
        sizes = model_sizes(model, cfg)
        cases += [(model, sizes[0]), (model, sizes[-1])]
        labels += [f"{model}@{sizes[0]} (small)", f"{model}@{sizes[-1]} (large)"]

    return run_real_model_series(
        figure="fig13",
        title="gain analysis: all algorithms at small/large inputs (dual A40)",
        x_label="benchmark",
        x=labels,
        cases=cases,
        algorithms=ALGORITHMS,
        kind="measured",
        value_key="measured_ms",
        config=cfg,
        notes="inter-mr / inter-lp are HIOS-MR / HIOS-LP without the "
        "intra-GPU pass (Alg. 2)",
    )
