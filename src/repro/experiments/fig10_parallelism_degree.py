"""Fig. 10 — inference latency vs. degree of model parallelism.

The number of layers of a 200-operator model sweeps 6..22: fewer
layers means more operators per layer, i.e. a higher degree of
parallelism.  Paper shape: sequential, IOS and HIOS-MR stay flat while
HIOS-LP's latency falls as layers decrease — HIOS-LP is self-adaptive
to the parallelism available in the model.
"""

from __future__ import annotations

from ..sweep import RandomDagSpec
from .config import ExperimentConfig, default_config
from .reporting import SeriesResult
from .simsweep import sweep_random_dags

__all__ = ["run"]

LAYER_COUNTS = (6, 10, 14, 18, 22)


def run(config: ExperimentConfig | None = None) -> SeriesResult:
    cfg = config or default_config()
    return sweep_random_dags(
        figure="fig10",
        title="latency vs number of layers (200 ops, 4 GPUs)",
        x_label="num_layers",
        x_values=LAYER_COUNTS,
        spec_factory=lambda L, seed: RandomDagSpec(
            seed=seed, num_gpus=cfg.num_gpus, num_layers=int(L)
        ),
        config=cfg,
    )
