"""Fig. 12 — measured inference latency of Inception-v3 and NASNet.

For each CNN and input size (default up to 2^K pixels), the engine
executes the schedules produced by sequential, IOS, HIOS-MR and
HIOS-LP on the dual-A40 platform.  Paper shape: HIOS-LP reduces
latency vs. sequential by up to ~20% (Inception-v3) / ~15% (NASNet)
and beats IOS by a margin that widens with input size; HIOS-LP beats
HIOS-MR at every size.
"""

from __future__ import annotations

from .config import ExperimentConfig, default_config
from .realmodels import model_sizes, run_real_model_series
from .reporting import SeriesResult

__all__ = ["run", "ALGORITHMS"]

ALGORITHMS = ("sequential", "ios", "hios-mr", "hios-lp")


def run(
    config: ExperimentConfig | None = None, model: str = "inception_v3"
) -> SeriesResult:
    cfg = config or default_config()
    sizes = model_sizes(model, cfg)
    return run_real_model_series(
        figure="fig12",
        title=f"measured inference latency of {model} (dual A40, engine)",
        x_label="input_size",
        x=list(sizes),
        cases=[(model, size) for size in sizes],
        algorithms=ALGORITHMS,
        kind="measured",
        value_key="measured_ms",
        config=cfg,
    )
