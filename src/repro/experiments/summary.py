"""Paper-vs-measured report generation.

The benchmark harness persists every reproduced figure as JSON under
``benchmarks/results/``.  This module turns those artifacts into the
per-figure comparison tables of ``EXPERIMENTS.md``: for each figure it
states the paper's claim, computes the corresponding statistic from the
measured series, and marks whether the claim's *shape* held.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from .reporting import SeriesResult

__all__ = ["load_result", "load_results", "Claim", "CLAIMS", "build_report"]


def load_result(path: str | Path) -> SeriesResult:
    """Load one figure's JSON artifact back into a SeriesResult."""
    data = json.loads(Path(path).read_text())
    return SeriesResult(
        figure=data["figure"],
        title=data["title"],
        x_label=data["x_label"],
        y_label=data["y_label"],
        x=data["x"],
        series=data["series"],
        notes=data.get("notes", ""),
    )


def load_results(results_dir: str | Path) -> dict[str, SeriesResult]:
    """Load every ``*.json`` artifact in a results directory, keyed by
    file stem (figure id)."""
    out: dict[str, SeriesResult] = {}
    for path in sorted(Path(results_dir).glob("*.json")):
        out[path.stem] = load_result(path)
    return out


@dataclass(frozen=True)
class Claim:
    """One checkable claim: paper statement + measured statistic."""

    figure: str  # artifact stem the claim reads
    paper: str  # what the paper reports
    describe: Callable[[SeriesResult], str]  # measured statistic, formatted
    check: Callable[[SeriesResult], bool]  # did the shape hold?


def _speedups(r: SeriesResult, alg: str) -> list[float]:
    return r.speedup("sequential", alg)


CLAIMS: tuple[Claim, ...] = (
    Claim(
        "fig1",
        "two concurrent convs beat sequential below 128x128 inputs and "
        "lose beyond (crossover between 64 and 128)",
        lambda r: (
            f"ratio {r.value('ratio', 64):.2f} at 64, "
            f"{r.value('ratio', 128):.2f} at 128"
        ),
        lambda r: r.value("ratio", 64) < 1.0 < r.value("ratio", 128),
    ),
    Claim(
        "fig2",
        "NVLink platforms show a lower comm/comp ratio than the PCIe "
        "platform at every size",
        lambda r: (
            f"A40/NVLink {min(r.series['dual-A40 (NVLink)']):.2f}-"
            f"{max(r.series['dual-A40 (NVLink)']):.2f} vs V100S/PCIe "
            f"{min(r.series['dual-V100S (PCIe Gen3)']):.2f}-"
            f"{max(r.series['dual-V100S (PCIe Gen3)']):.2f}"
        ),
        lambda r: all(
            n < p
            for n, p in zip(
                r.series["dual-A40 (NVLink)"], r.series["dual-V100S (PCIe Gen3)"]
            )
        ),
    ),
    Claim(
        "fig7",
        "HIOS-LP speedup over sequential grows 1.4 -> 3.8 from 2 to 12 "
        "GPUs; HIOS-MR stays below ~1.5",
        lambda r: (
            f"HIOS-LP {_speedups(r, 'hios-lp')[0]:.2f} -> "
            f"{_speedups(r, 'hios-lp')[-1]:.2f}; HIOS-MR max "
            f"{max(_speedups(r, 'hios-mr')):.2f}"
        ),
        lambda r: _speedups(r, "hios-lp")[-1] > 2.5
        and max(_speedups(r, "hios-mr")) < 2.1,
    ),
    Claim(
        "fig8",
        "HIOS-LP holds 2.01-2.12x over sequential, 1.81-1.91x over IOS, "
        "1.51-1.54x over HIOS-MR across 100-400 operators",
        lambda r: (
            f"vs seq {min(_speedups(r, 'hios-lp')):.2f}-"
            f"{max(_speedups(r, 'hios-lp')):.2f}; vs MR "
            f"{min(a / b for a, b in zip(r.series['hios-mr'], r.series['hios-lp'])):.2f}-"
            f"{max(a / b for a, b in zip(r.series['hios-mr'], r.series['hios-lp'])):.2f}"
        ),
        lambda r: all(1.6 <= s <= 2.9 for s in _speedups(r, "hios-lp")),
    ),
    Claim(
        "fig9",
        "speedups decline as dependencies grow 400 -> 600 "
        "(LP 2.06 -> 1.64, MR 1.35 -> 1.19 over sequential)",
        lambda r: (
            f"LP {_speedups(r, 'hios-lp')[0]:.2f} -> "
            f"{_speedups(r, 'hios-lp')[-1]:.2f}; MR "
            f"{_speedups(r, 'hios-mr')[0]:.2f} -> "
            f"{_speedups(r, 'hios-mr')[-1]:.2f}"
        ),
        lambda r: _speedups(r, "hios-lp")[0] > _speedups(r, "hios-lp")[-1]
        and _speedups(r, "hios-mr")[0] > _speedups(r, "hios-mr")[-1],
    ),
    Claim(
        "fig10",
        "sequential/IOS/HIOS-MR flat across 6-22 layers; HIOS-LP "
        "improves as layers decrease (174 ms @6 vs 233 ms @22)",
        lambda r: (
            f"LP {r.series['hios-lp'][0]:.0f} ms @{r.x[0]} layers vs "
            f"{r.series['hios-lp'][-1]:.0f} ms @{r.x[-1]}; sequential "
            f"spread {max(r.series['sequential']) / min(r.series['sequential']):.2f}x"
        ),
        lambda r: r.series["hios-lp"][0] <= r.series["hios-lp"][-1] * 1.05
        and max(r.series["sequential"]) / min(r.series["sequential"]) < 1.2,
    ),
    Claim(
        "fig11",
        "HIOS-LP/sequential declines 2.23 -> 1.78 and HIOS-MR/sequential "
        "1.52 -> 1.10 as p grows 0.4 -> 1.2",
        lambda r: (
            f"LP {_speedups(r, 'hios-lp')[0]:.2f} -> "
            f"{_speedups(r, 'hios-lp')[-1]:.2f}; MR "
            f"{_speedups(r, 'hios-mr')[0]:.2f} -> "
            f"{_speedups(r, 'hios-mr')[-1]:.2f}"
        ),
        lambda r: _speedups(r, "hios-lp")[0] > _speedups(r, "hios-lp")[-1]
        and _speedups(r, "hios-mr")[0] > _speedups(r, "hios-mr")[-1],
    ),
    Claim(
        "fig12_inception",
        "HIOS-LP cuts Inception-v3 latency 6.1-19.7% vs sequential and "
        "3.3-16.5% vs IOS, widening with input size",
        lambda r: (
            f"vs seq {100 * (1 - r.series['hios-lp'][-1] / r.series['sequential'][-1]):.1f}% "
            f"and vs IOS {100 * (1 - r.series['hios-lp'][-1] / r.series['ios'][-1]):.1f}% "
            f"at the largest size"
        ),
        lambda r: r.series["hios-lp"][-1] < r.series["ios"][-1]
        and r.series["hios-lp"][-1] < r.series["sequential"][-1],
    ),
    Claim(
        "fig12_nasnet",
        "HIOS-LP cuts NASNet latency up to 14.5% vs sequential and up to "
        "11.1% vs IOS",
        lambda r: (
            f"vs seq {100 * (1 - r.series['hios-lp'][-1] / r.series['sequential'][-1]):.1f}% "
            f"and vs IOS {100 * (1 - r.series['hios-lp'][-1] / r.series['ios'][-1]):.1f}% "
            f"at the largest size"
        ),
        lambda r: r.series["hios-lp"][-1] <= r.series["ios"][-1]
        and r.series["hios-lp"][-1] < r.series["sequential"][-1],
    ),
    Claim(
        "fig13",
        "inter-GPU LP mapping dominates HIOS-LP's reduction at large "
        "inputs (98.2% for Inception, ~100% for NASNet; 81.6% at "
        "Inception's small input)",
        lambda r: "; ".join(
            f"{label}: "
            f"{100 * (r.value('sequential', label) - r.value('inter-lp', label)) / max(1e-9, r.value('sequential', label) - r.value('hios-lp', label)):.0f}%"
            for label in r.x
            if r.value("sequential", label) > r.value("hios-lp", label)
        ),
        lambda r: all(
            (r.value("sequential", label) - r.value("inter-lp", label))
            / max(1e-9, r.value("sequential", label) - r.value("hios-lp", label))
            > 0.8
            for label in r.x
            if "(large)" in str(label)
            and r.value("sequential", label) > r.value("hios-lp", label)
        ),
    ),
    Claim(
        "fig14_inception",
        "HIOS-LP/MR scheduling cost grows much slower with input size "
        "than IOS's (IOS profiles exponentially many candidate groups)",
        lambda r: (
            f"IOS {r.series['ios'][0]:.2f} -> {r.series['ios'][-1]:.2f} min; "
            f"HIOS-LP {r.series['hios-lp'][0]:.2f} -> "
            f"{r.series['hios-lp'][-1]:.2f} min"
        ),
        lambda r: r.series["ios"][-1] > 3 * r.series["hios-lp"][-1],
    ),
)


def build_report(results_dir: str | Path) -> str:
    """Markdown paper-vs-measured report from the benchmark artifacts."""
    results = load_results(results_dir)
    lines = [
        "| figure | paper claim | measured | shape holds |",
        "|---|---|---|---|",
    ]
    for claim in CLAIMS:
        result = results.get(claim.figure)
        if result is None:
            lines.append(f"| {claim.figure} | {claim.paper} | *(not run)* | — |")
            continue
        try:
            measured = claim.describe(result)
            ok = "yes" if claim.check(result) else "**no**"
        except (KeyError, ValueError, ZeroDivisionError) as exc:
            measured, ok = f"*(error: {exc})*", "—"
        lines.append(f"| {claim.figure} | {claim.paper} | {measured} | {ok} |")
    return "\n".join(lines)
