"""Shared machinery for the Section V random-DAG sweeps (Figs. 7-11).

Each data point averages the scheduled latency of ``config.instances``
random DAG instances.  Single-GPU algorithms (sequential, IOS) do not
depend on parameters that only affect the multi-GPU setting, so the
helper recomputes them only when the underlying graphs change.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.api import schedule_graph
from ..costmodel.profile import CostProfile
from .config import ALGORITHM_ORDER, ExperimentConfig, default_config
from .reporting import SeriesResult

__all__ = ["sweep_random_dags", "SIM_ALGORITHMS"]

SIM_ALGORITHMS = tuple(ALGORITHM_ORDER)
_SINGLE_GPU = {"sequential", "ios"}


def _schedule_kwargs(config: ExperimentConfig, algorithm: str) -> dict[str, object]:
    if algorithm in ("hios-lp", "hios-mr"):
        return {"window": config.window}
    return {}


def sweep_random_dags(
    figure: str,
    title: str,
    x_label: str,
    x_values: Sequence[object],
    profile_factory: Callable[[object, int], CostProfile],
    config: ExperimentConfig | None = None,
    algorithms: Sequence[str] = SIM_ALGORITHMS,
    graph_varies_with_x: bool = True,
    notes: str = "",
) -> SeriesResult:
    """Run ``algorithms`` over ``x_values``; average over instances.

    ``profile_factory(x, seed)`` must return the cost profile of one
    instance.  When ``graph_varies_with_x`` is false (e.g. the Fig. 7
    GPU-count sweep, where only ``num_gpus`` changes), the single-GPU
    baselines are computed once per seed and reused across x.
    """
    cfg = config or default_config()
    series: dict[str, list[float]] = {a: [] for a in algorithms}
    stds: dict[str, list[float]] = {a: [] for a in algorithms}
    single_cache: dict[tuple[str, int], float] = {}

    for x in x_values:
        samples: dict[str, list[float]] = {a: [] for a in algorithms}
        for i in range(cfg.instances):
            seed = cfg.seed0 + i
            profile = profile_factory(x, seed)
            for alg in algorithms:
                if alg in _SINGLE_GPU and not graph_varies_with_x:
                    key = (alg, seed)
                    if key not in single_cache:
                        single_cache[key] = schedule_graph(
                            profile, alg, **_schedule_kwargs(cfg, alg)
                        ).latency
                    samples[alg].append(single_cache[key])
                else:
                    samples[alg].append(
                        schedule_graph(
                            profile, alg, **_schedule_kwargs(cfg, alg)
                        ).latency
                    )
        for alg in algorithms:
            vals = np.asarray(samples[alg])
            series[alg].append(float(vals.mean()))
            stds[alg].append(float(vals.std(ddof=0)))

    return SeriesResult(
        figure=figure,
        title=title,
        x_label=x_label,
        y_label="inference latency (ms)",
        x=list(x_values),
        series=series,
        notes=notes
        or f"mean of {cfg.instances} random instances per point "
        f"({'fast' if cfg.fast else 'full'} config)",
        extras={"std": stds},
    )
