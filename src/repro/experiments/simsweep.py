"""Shared machinery for the Section V random-DAG sweeps (Figs. 7-11).

Each data point averages the scheduled latency of ``config.instances``
random DAG instances.  Sweeps decompose into pure
:class:`~repro.sweep.units.WorkUnit` values — one per
``(x, instance, algorithm)`` — and run through the
:mod:`repro.sweep` engine: identical units (e.g. the single-GPU
baselines of a GPU-count sweep, which canonicalize to the same cache
key) collapse before dispatch, cached results are reused, and the rest
fans out over ``config.jobs`` worker processes.  ``jobs=1`` evaluates
units inline in input order — bit-identical to the historical serial
triple loop.

Seed contract
-------------
Instance ``i`` of *every* data point uses seed ``config.seed0 + i`` —
for every x value, every algorithm and every dispatch order.  Seeds
are derived from the instance index when the unit is *built* (never
from iteration state), so serial, parallel and cache-warm runs provably
see identical workloads and produce identical series.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.api import schedule_graph
from ..costmodel.profile import CostProfile
from ..sweep import (
    RandomDagSpec,
    ResultCache,
    SweepProgress,
    SweepStats,
    WorkUnit,
    run_units,
)
from .config import ALGORITHM_ORDER, ExperimentConfig, default_config
from .reporting import SeriesResult

__all__ = ["sweep_random_dags", "dispatch_units", "SIM_ALGORITHMS"]

SIM_ALGORITHMS = tuple(ALGORITHM_ORDER)
_SINGLE_GPU = {"sequential", "ios"}


def _schedule_kwargs(config: ExperimentConfig, algorithm: str) -> dict[str, object]:
    if algorithm in ("hios-lp", "hios-mr"):
        return {"window": config.window}
    return {}


def dispatch_units(
    cfg: ExperimentConfig,
    figure: str,
    units: Sequence[WorkUnit],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    progress: SweepProgress | None = None,
) -> tuple[list[dict[str, float]], SweepStats]:
    """Run ``units`` with jobs/cache/progress resolved from ``cfg``.

    Explicit arguments win over the config fields; shared by the
    random-DAG and real-model sweep helpers.
    """
    if jobs is None:
        jobs = cfg.jobs
    if cache is None and cfg.use_cache:
        cache = ResultCache(cfg.cache_dir)
    if progress is None:
        progress = SweepProgress(figure, len(units), enabled=cfg.progress)
    return run_units(
        units, jobs=jobs, cache=cache, progress=progress, batch_units=cfg.batch_units
    )


def sweep_random_dags(
    figure: str,
    title: str,
    x_label: str,
    x_values: Sequence[object],
    profile_factory: Callable[[object, int], CostProfile] | None = None,
    config: ExperimentConfig | None = None,
    algorithms: Sequence[str] = SIM_ALGORITHMS,
    graph_varies_with_x: bool = True,
    notes: str = "",
    spec_factory: Callable[[object, int], RandomDagSpec] | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    progress: SweepProgress | None = None,
) -> SeriesResult:
    """Run ``algorithms`` over ``x_values``; average over instances.

    ``spec_factory(x, seed)`` must return the picklable
    :class:`RandomDagSpec` of one instance — the form every figure
    driver uses, and the one the parallel engine and result cache
    require.  ``profile_factory(x, seed)`` (a callable returning a
    built :class:`CostProfile`) is the legacy escape hatch for ad-hoc
    sweeps over arbitrary workloads; it cannot cross process
    boundaries, so it always runs serially and uncached, with the
    single-GPU baselines reused across x when ``graph_varies_with_x``
    is false.  With a ``spec_factory`` that reuse needs no flag: the
    single-GPU algorithms' cache keys are invariant under the
    multi-GPU-only spec fields, so the engine dedups them wherever the
    sweep allows it.

    Seeds follow the module-level contract: instance ``i`` uses
    ``config.seed0 + i``, independent of x, algorithm and dispatch
    order.
    """
    cfg = config or default_config()
    if spec_factory is not None:
        return _sweep_units(
            figure, title, x_label, x_values, spec_factory, cfg, algorithms,
            notes, jobs, cache, progress,
        )
    if profile_factory is None:
        raise TypeError("pass spec_factory= (preferred) or profile_factory=")
    return _sweep_serial_legacy(
        figure, title, x_label, x_values, profile_factory, cfg, algorithms,
        graph_varies_with_x, notes,
    )


def _sweep_units(
    figure: str,
    title: str,
    x_label: str,
    x_values: Sequence[object],
    spec_factory: Callable[[object, int], RandomDagSpec],
    cfg: ExperimentConfig,
    algorithms: Sequence[str],
    notes: str,
    jobs: int | None,
    cache: ResultCache | None,
    progress: SweepProgress | None,
) -> SeriesResult:
    units: list[WorkUnit] = []
    index: dict[tuple[int, int, str], int] = {}
    for xi, x in enumerate(x_values):
        for i in range(cfg.instances):
            spec = spec_factory(x, cfg.seed0 + i)  # the seed contract
            for alg in algorithms:
                index[(xi, i, alg)] = len(units)
                units.append(
                    WorkUnit(
                        figure=figure,
                        x=x,
                        instance=i,
                        algorithm=alg,
                        spec=spec,
                        schedule_kwargs=tuple(
                            sorted(_schedule_kwargs(cfg, alg).items())
                        ),
                        kind="latency",
                    )
                )
    payloads, stats = dispatch_units(cfg, figure, units, jobs, cache, progress)

    series: dict[str, list[float]] = {a: [] for a in algorithms}
    stds: dict[str, list[float]] = {a: [] for a in algorithms}
    for xi in range(len(x_values)):
        for alg in algorithms:
            vals = np.asarray(
                [
                    payloads[index[(xi, i, alg)]]["latency"]
                    for i in range(cfg.instances)
                ]
            )
            series[alg].append(float(vals.mean()))
            stds[alg].append(float(vals.std(ddof=0)))

    return SeriesResult(
        figure=figure,
        title=title,
        x_label=x_label,
        y_label="inference latency (ms)",
        x=list(x_values),
        series=series,
        notes=notes
        or f"mean of {cfg.instances} random instances per point "
        f"({'fast' if cfg.fast else 'full'} config)",
        extras={"std": stds, "sweep": stats.to_dict()},
    )


def _sweep_serial_legacy(
    figure: str,
    title: str,
    x_label: str,
    x_values: Sequence[object],
    profile_factory: Callable[[object, int], CostProfile],
    cfg: ExperimentConfig,
    algorithms: Sequence[str],
    graph_varies_with_x: bool,
    notes: str,
) -> SeriesResult:
    series: dict[str, list[float]] = {a: [] for a in algorithms}
    stds: dict[str, list[float]] = {a: [] for a in algorithms}
    single_cache: dict[tuple[str, int], float] = {}

    for x in x_values:
        samples: dict[str, list[float]] = {a: [] for a in algorithms}
        for i in range(cfg.instances):
            seed = cfg.seed0 + i  # the seed contract
            profile = profile_factory(x, seed)
            for alg in algorithms:
                if alg in _SINGLE_GPU and not graph_varies_with_x:
                    key = (alg, seed)
                    if key not in single_cache:
                        single_cache[key] = schedule_graph(
                            profile, alg, **_schedule_kwargs(cfg, alg)
                        ).latency
                    samples[alg].append(single_cache[key])
                else:
                    samples[alg].append(
                        schedule_graph(
                            profile, alg, **_schedule_kwargs(cfg, alg)
                        ).latency
                    )
        for alg in algorithms:
            vals = np.asarray(samples[alg])
            series[alg].append(float(vals.mean()))
            stds[alg].append(float(vals.std(ddof=0)))

    return SeriesResult(
        figure=figure,
        title=title,
        x_label=x_label,
        y_label="inference latency (ms)",
        x=list(x_values),
        series=series,
        notes=notes
        or f"mean of {cfg.instances} random instances per point "
        f"({'fast' if cfg.fast else 'full'} config)",
        extras={"std": stds},
    )
