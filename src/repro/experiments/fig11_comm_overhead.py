"""Fig. 11 — inference latency vs. communication/computation ratio p.

The transfer time of each edge is ``max(0.1 ms, p * t(u))``; p sweeps
0.4..1.2.  Paper shape: HIOS-LP's advantage over sequential shrinks
from ~2.2x to ~1.8x as p grows, HIOS-MR's from ~1.5x to ~1.1x —
cheap interconnects (NVLink, p < 1) are where multi-GPU inter-operator
parallelism pays off.
"""

from __future__ import annotations

from ..sweep import RandomDagSpec
from .config import ExperimentConfig, default_config
from .reporting import SeriesResult
from .simsweep import sweep_random_dags

__all__ = ["run"]

COMM_RATIOS = (0.4, 0.6, 0.8, 1.0, 1.2)


def run(config: ExperimentConfig | None = None) -> SeriesResult:
    cfg = config or default_config()
    # only edge weights change with p; the single-GPU baselines see
    # identical graphs (no transfers), so their cache keys coincide
    # across x and the sweep engine runs them once per seed
    return sweep_random_dags(
        figure="fig11",
        title="latency vs transfer/computation time ratio p (200 ops, 4 GPUs)",
        x_label="p",
        x_values=COMM_RATIOS,
        spec_factory=lambda p, seed: RandomDagSpec(
            seed=seed, num_gpus=cfg.num_gpus, transfer_ratio=float(p)
        ),
        config=cfg,
    )
