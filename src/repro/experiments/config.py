"""Experiment parameterisation.

Every figure driver accepts an :class:`ExperimentConfig`.  The default
is a *fast* configuration (3 random instances per data point, trimmed
sweeps) so the whole benchmark suite runs in minutes; set the
environment variable ``REPRO_FULL=1`` (or build the config with
``fast=False``) for the paper's full setting of 30 instances per point.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["ExperimentConfig", "default_config", "ALGORITHM_ORDER"]

# canonical plotting/report order (paper legend order)
ALGORITHM_ORDER = ["sequential", "ios", "hios-mr", "hios-lp", "inter-mr", "inter-lp"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared experiment knobs.

    ``instances`` random DAGs are generated per simulation data point
    (seeds ``seed0 .. seed0 + instances - 1``) and their latencies
    averaged, as in the paper ("each data point denotes the average of
    30 randomly generated instances").
    """

    fast: bool = True
    instances: int = 3
    seed0: int = 0
    num_gpus: int = 4
    window: int = 3

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError("need at least one instance per data point")
        if self.num_gpus < 1:
            raise ValueError("need at least one GPU")

    @classmethod
    def full(cls) -> "ExperimentConfig":
        return cls(fast=False, instances=30)

    def with_(self, **kwargs: object) -> "ExperimentConfig":
        return replace(self, **kwargs)  # type: ignore[arg-type]


def default_config() -> ExperimentConfig:
    """Fast config unless ``REPRO_FULL`` is set in the environment."""
    if os.environ.get("REPRO_FULL", "").strip() not in ("", "0", "false"):
        return ExperimentConfig.full()
    return ExperimentConfig()
