"""Experiment parameterisation.

Every figure driver accepts an :class:`ExperimentConfig`.  The default
is a *fast* configuration (3 random instances per data point, trimmed
sweeps) so the whole benchmark suite runs in minutes; set the
environment variable ``REPRO_FULL=1`` (or build the config with
``fast=False``) for the paper's full setting of 30 instances per point.

Sweep execution knobs (PR: parallel sweep engine) are also part of the
config so benchmarks and the CLI share one mechanism:

* ``jobs`` — worker processes for the sweep engine (``1`` = the
  historical serial path, ``0`` = one per CPU); env ``REPRO_JOBS``.
* ``batch_units`` — units per worker batch on the parallel path
  (``None`` = auto-tune from unit kind); env ``REPRO_BATCH_UNITS``.
* ``use_cache`` / ``cache_dir`` — content-addressed result cache
  (:mod:`repro.sweep.cache`); env ``REPRO_CACHE=1`` and
  ``REPRO_CACHE_DIR``.
* ``progress`` — line-oriented progress reporting on stderr; env
  ``REPRO_PROGRESS=1``.
* ``trace_dir`` — when set, engine-measured sweeps replay each unit's
  execution and export a Chrome/Perfetto trace per unit into this
  directory (see :mod:`repro.obs`); env ``REPRO_TRACE_DIR``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["ExperimentConfig", "default_config", "ALGORITHM_ORDER"]

# canonical plotting/report order (paper legend order)
ALGORITHM_ORDER = ["sequential", "ios", "hios-mr", "hios-lp", "inter-mr", "inter-lp"]


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip() not in ("", "0", "false")


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared experiment knobs.

    ``instances`` random DAGs are generated per simulation data point
    (seeds ``seed0 .. seed0 + instances - 1``) and their latencies
    averaged, as in the paper ("each data point denotes the average of
    30 randomly generated instances").
    """

    fast: bool = True
    instances: int = 3
    seed0: int = 0
    num_gpus: int = 4
    window: int = 3
    jobs: int = 1
    batch_units: int | None = None
    use_cache: bool = False
    cache_dir: str | None = None
    progress: bool = False
    trace_dir: str | None = None

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError("need at least one instance per data point")
        if self.num_gpus < 1:
            raise ValueError("need at least one GPU")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = one per CPU)")
        if self.batch_units is not None and self.batch_units < 1:
            raise ValueError("batch_units must be >= 1 (None = auto)")

    @classmethod
    def full(cls) -> "ExperimentConfig":
        return cls(fast=False, instances=30)

    def with_(self, **kwargs: object) -> "ExperimentConfig":
        return replace(self, **kwargs)  # type: ignore[arg-type]


def default_config() -> ExperimentConfig:
    """Fast config unless ``REPRO_FULL`` is set in the environment.

    Sweep-engine knobs come from ``REPRO_JOBS`` (worker count),
    ``REPRO_CACHE`` (enable the result cache) and ``REPRO_PROGRESS``
    (progress lines on stderr) so the benchmark harness picks them up
    without code changes; the cache directory itself resolves via
    ``REPRO_CACHE_DIR`` inside :mod:`repro.sweep.cache`.
    """
    cfg = ExperimentConfig.full() if _env_flag("REPRO_FULL") else ExperimentConfig()
    jobs = os.environ.get("REPRO_JOBS", "").strip()
    if jobs:
        cfg = cfg.with_(jobs=int(jobs))
    batch_units = os.environ.get("REPRO_BATCH_UNITS", "").strip()
    if batch_units:
        cfg = cfg.with_(batch_units=int(batch_units))
    if _env_flag("REPRO_CACHE"):
        cfg = cfg.with_(use_cache=True)
    if _env_flag("REPRO_PROGRESS"):
        cfg = cfg.with_(progress=True)
    trace_dir = os.environ.get("REPRO_TRACE_DIR", "").strip()
    if trace_dir:
        cfg = cfg.with_(trace_dir=trace_dir)
    return cfg
