"""Result containers and text rendering shared by all figure drivers.

Each experiment returns a :class:`SeriesResult`: an x-axis sweep with
one y-series per algorithm/platform, rendered as the aligned text table
the benchmarks print (and EXPERIMENTS.md records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["SeriesResult", "format_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], precision: int = 3
) -> str:
    """Render an aligned monospace table."""

    def fmt(x: object) -> str:
        if isinstance(x, float):
            return f"{x:.{precision}f}"
        return str(x)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class SeriesResult:
    """One figure's data: ``series[name][i]`` corresponds to ``x[i]``."""

    figure: str
    title: str
    x_label: str
    y_label: str
    x: list[object]
    series: dict[str, list[float]]
    notes: str = ""
    extras: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, ys in self.series.items():
            if len(ys) != len(self.x):
                raise ValueError(
                    f"series {name!r} has {len(ys)} points for {len(self.x)} x values"
                )

    def value(self, name: str, x: object) -> float:
        """Single data point lookup."""
        return self.series[name][self.x.index(x)]

    def ratio(self, numerator: str, denominator: str) -> list[float]:
        """Pointwise ratio between two series (e.g. speedup curves)."""
        num = self.series[numerator]
        den = self.series[denominator]
        return [n / d for n, d in zip(num, den)]

    def speedup(self, baseline: str, name: str) -> list[float]:
        """``baseline latency / name latency`` per x value."""
        return self.ratio(baseline, name)

    def to_text(self, precision: int = 3, include_std: bool = True) -> str:
        stds = self.extras.get("std") if include_std else None
        headers = [self.x_label] + list(self.series)
        rows = []
        for i, xv in enumerate(self.x):
            row: list[object] = [xv]
            for name in self.series:
                val = self.series[name][i]
                if stds is not None and name in stds:
                    row.append(f"{val:.{precision}f}±{stds[name][i]:.{precision}f}")
                else:
                    row.append(val)
            rows.append(row)
        body = format_table(headers, rows, precision=precision)
        head = f"{self.figure}: {self.title}  [{self.y_label}]"
        if self.notes:
            return f"{head}\n{body}\n# {self.notes}"
        return f"{head}\n{body}"
