"""Degraded-mode schedule repair after a GPU failure.

When the engine fail-stops on an injected
:class:`~repro.substrate.faults.GpuFailure`, the run hands back a
:class:`~repro.substrate.faults.FailureEvent`: which operators finished
(their outputs survive on the host) and which were in flight (their
progress is lost).  :func:`repair_schedule` re-schedules the unfinished
subgraph onto the surviving GPUs with any registered algorithm — by
default HIOS-LP, i.e. the full list-scheduling + ``parallelize()``
machinery running in degraded mode — and :func:`splice_traces` glues
the partial pre-failure trace and the repaired tail into one combined
:class:`~repro.substrate.engine.ExecutionTrace`.

Model assumptions (kept deliberately simple, see DESIGN.md):

* fail-stop with host checkpointing — finished operators never
  re-execute, their outputs are re-staged to the survivors for free
  during failover;
* in-flight operators on *any* GPU restart from scratch (the global
  cut keeps the hand-off state consistent);
* the repaired tail runs fault-free (single-failure model).

The substrate imports :mod:`repro.core`, so everything engine-facing
here is imported lazily inside the functions that need it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..costmodel.profile import CostProfile
from .debuglint import debug_lint_schedule
from .graph import OpGraph
from .result import ScheduleResult
from .schedule import Schedule, Stage

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..substrate.engine import EngineConfig, ExecutionTrace
    from ..substrate.faults import FailureEvent

__all__ = ["RepairError", "RepairResult", "repair_schedule", "run_with_repair", "splice_traces"]


class RepairError(RuntimeError):
    """Raised when a failed run cannot be repaired (no survivors, ...)."""


@dataclass(frozen=True)
class RepairResult:
    """Outcome of re-scheduling the unfinished subgraph.

    ``schedule`` uses the *original* GPU indices (the failed GPU hosts
    nothing); ``result`` is the raw scheduler output on the compacted
    survivor indices, kept for its latency prediction and stats.
    """

    failure: "FailureEvent"
    survivors: tuple[int, ...]
    subgraph: OpGraph
    schedule: Schedule
    result: ScheduleResult

    @property
    def algorithm(self) -> str:
        return self.result.algorithm

    @property
    def predicted_tail_latency(self) -> float:
        return self.result.latency


def _surviving_gpus(num_gpus: int, failure: "FailureEvent") -> tuple[int, ...]:
    if not (0 <= failure.gpu < num_gpus):
        raise RepairError(
            f"failure names GPU {failure.gpu} but the profile has "
            f"{num_gpus} GPU(s)"
        )
    survivors = tuple(g for g in range(num_gpus) if g != failure.gpu)
    if not survivors:
        raise RepairError("no surviving GPU to repair onto")
    return survivors


def repair_schedule(
    profile: CostProfile,
    failure: "FailureEvent",
    algorithm: str = "hios-lp",
    **kwargs: Any,
) -> RepairResult:
    """Re-schedule the unfinished subgraph onto the surviving GPUs.

    ``algorithm`` accepts any :data:`repro.core.api.ALGORITHMS` name and
    ``kwargs`` are forwarded to it, mirroring ``schedule_graph``; the
    default runs HIOS-LP in degraded mode.  Edges from finished
    producers are dropped (their tensors are host-checkpointed and
    re-staged during failover), making their consumers sources of the
    repair subgraph.
    """
    from .api import schedule_graph  # local import avoids a cycle

    remaining = failure.unfinished(profile.graph.names)
    if not remaining:
        raise RepairError("nothing to repair: every operator already finished")
    survivors = _surviving_gpus(profile.num_gpus, failure)

    subgraph = profile.graph.subgraph(remaining)
    speeds = None
    if profile.gpu_speeds is not None:
        speeds = tuple(profile.gpu_speeds[g] for g in survivors)
    subprofile = CostProfile(
        graph=subgraph,
        concurrency=profile.concurrency,
        num_gpus=len(survivors),
        max_streams=profile.max_streams,
        send_blocking=profile.send_blocking,
        gpu_speeds=speeds,
    )
    result = schedule_graph(subprofile, algorithm, **kwargs)

    # map the compacted survivor indices back to the original GPU ids
    repaired = Schedule(profile.num_gpus)
    for idx, gpu in enumerate(survivors):
        for st in result.schedule.stages_on(idx):
            repaired.append_stage(Stage(gpu, st.ops))
    debug_lint_schedule(subgraph, repaired, algorithm=f"repair/{algorithm}")
    return RepairResult(
        failure=failure,
        survivors=survivors,
        subgraph=subgraph,
        schedule=repaired,
        result=result,
    )


def splice_traces(head: "ExecutionTrace", tail: "ExecutionTrace") -> "ExecutionTrace":
    """Combine a failed partial trace with its repaired tail.

    The tail's clock starts at zero; every tail timestamp is shifted by
    the failure time.  Finished operators keep their pre-failure times,
    everything else takes the tail's.  The combined trace keeps the
    ``failure`` marker so callers can tell a repaired run from a clean
    one.
    """
    from ..substrate.engine import ExecutionTrace  # local import avoids a cycle

    if head.failure is None:
        raise RepairError("head trace did not fail; nothing to splice")
    if tail.failure is not None:
        raise RepairError("tail trace failed too; cannot splice a partial tail")
    at = head.failure.time
    done = head.failure.finished

    op_launch = {op: t for op, t in head.op_launch.items() if op in done}
    op_start = {op: t for op, t in head.op_start.items() if op in done}
    op_finish = {op: t for op, t in head.op_finish.items() if op in done}
    for op, t in tail.op_launch.items():
        op_launch[op] = t + at
    for op, t in tail.op_start.items():
        op_start[op] = t + at
    for op, t in tail.op_finish.items():
        op_finish[op] = t + at

    transfers = list(head.transfers) + [
        replace(
            rec,
            post_time=rec.post_time + at,
            start_time=rec.start_time + at,
            finish_time=rec.finish_time + at,
        )
        for rec in tail.transfers
    ]
    gpu_busy = dict(head.gpu_busy)
    for g, busy in tail.gpu_busy.items():
        gpu_busy[g] = gpu_busy.get(g, 0.0) + busy
    return ExecutionTrace(
        latency=at + tail.latency,
        op_launch=op_launch,
        op_start=op_start,
        op_finish=op_finish,
        transfers=transfers,
        gpu_busy=gpu_busy,
        failure=head.failure,
    )


def run_with_repair(
    profile: CostProfile,
    schedule: Schedule,
    config: "EngineConfig | None" = None,
    algorithm: str = "hios-lp",
    **kwargs: Any,
) -> "tuple[ExecutionTrace, RepairResult | None]":
    """Execute ``schedule`` under ``config``; on a GPU failure, repair
    and finish on the survivors.

    Returns ``(trace, repair)``: a clean run returns its trace and
    ``None``; a failed run returns the spliced head+tail trace and the
    :class:`RepairResult` that produced the tail.  The tail executes
    with the faults stripped from the config (single-failure model).
    """
    from ..substrate.engine import MultiGpuEngine  # local import avoids a cycle

    engine = MultiGpuEngine(config)
    head = engine.run(profile.graph, schedule)
    if head.failure is None:
        return head, None
    repair = repair_schedule(profile, head.failure, algorithm=algorithm, **kwargs)
    tail_engine = MultiGpuEngine(replace(engine.config, faults=None))
    tail = tail_engine.run(repair.subgraph, repair.schedule)
    return splice_traces(head, tail), repair
