"""Degraded-mode schedule repair after a GPU failure.

When the engine fail-stops on an injected
:class:`~repro.substrate.faults.GpuFailure`, the run hands back a
:class:`~repro.substrate.faults.FailureEvent`: which operators finished
(their outputs survive on the host) and which were in flight (their
progress is lost).  :func:`repair_schedule` re-schedules the unfinished
subgraph onto the surviving GPUs with any registered algorithm — by
default HIOS-LP, i.e. the full list-scheduling + ``parallelize()``
machinery running in degraded mode — and :func:`splice_traces` glues
the partial pre-failure trace and the repaired tail into one combined
:class:`~repro.substrate.engine.ExecutionTrace`.

Model assumptions (kept deliberately simple, see DESIGN.md):

* fail-stop with host checkpointing — finished operators never
  re-execute, their outputs are re-staged to the survivors for free
  during failover;
* in-flight operators on *any* GPU restart from scratch (the global
  cut keeps the hand-off state consistent);
* the repaired tail faces the *remaining* fault plan
  (:meth:`~repro.substrate.faults.FaultPlan.resume_after`): failures
  that have not fired yet can strike the tail too, and
  :func:`run_with_repair` keeps repairing — head, repair, tail, repair,
  ... — until a tail runs clean or no survivor is left (cascading
  failures, generalizing the original single-failure model).

The substrate imports :mod:`repro.core`, so everything engine-facing
here is imported lazily inside the functions that need it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..costmodel.profile import CostProfile
from .debuglint import debug_lint_schedule
from .graph import OpGraph
from .result import ScheduleResult
from .schedule import Schedule, Stage

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..substrate.engine import EngineConfig, ExecutionTrace
    from ..substrate.faults import FailureEvent

__all__ = ["RepairError", "RepairResult", "repair_schedule", "run_with_repair", "splice_traces"]


class RepairError(RuntimeError):
    """Raised when a failed run cannot be repaired (no survivors, ...)."""


@dataclass(frozen=True)
class RepairResult:
    """Outcome of re-scheduling the unfinished subgraph.

    ``schedule`` uses the *original* GPU indices (the failed GPU hosts
    nothing); ``result`` is the raw scheduler output on the compacted
    survivor indices, kept for its latency prediction and stats.
    """

    failure: "FailureEvent"
    survivors: tuple[int, ...]
    subgraph: OpGraph
    schedule: Schedule
    result: ScheduleResult

    @property
    def algorithm(self) -> str:
        return self.result.algorithm

    @property
    def predicted_tail_latency(self) -> float:
        return self.result.latency


def _surviving_gpus(
    num_gpus: int, failure: "FailureEvent", dead: tuple[int, ...] = ()
) -> tuple[int, ...]:
    if not (0 <= failure.gpu < num_gpus):
        raise RepairError(
            f"failure names GPU {failure.gpu} but the profile has "
            f"{num_gpus} GPU(s)"
        )
    gone = set(dead) | {failure.gpu}
    survivors = tuple(g for g in range(num_gpus) if g not in gone)
    if not survivors:
        raise RepairError("no surviving GPU to repair onto")
    return survivors


def repair_schedule(
    profile: CostProfile,
    failure: "FailureEvent",
    algorithm: str = "hios-lp",
    dead: tuple[int, ...] = (),
    **kwargs: Any,
) -> RepairResult:
    """Re-schedule the unfinished subgraph onto the surviving GPUs.

    ``algorithm`` accepts any :data:`repro.core.api.ALGORITHMS` name and
    ``kwargs`` are forwarded to it, mirroring ``schedule_graph``; the
    default runs HIOS-LP in degraded mode.  ``dead`` names GPUs lost in
    *earlier* failures of a cascade — they are excluded from the
    survivor set along with ``failure.gpu``.  Edges from finished
    producers are dropped (their tensors are host-checkpointed and
    re-staged during failover), making their consumers sources of the
    repair subgraph.
    """
    from .api import schedule_graph  # local import avoids a cycle

    remaining = failure.unfinished(profile.graph.names)
    if not remaining:
        raise RepairError("nothing to repair: every operator already finished")
    survivors = _surviving_gpus(profile.num_gpus, failure, dead)

    subgraph = profile.graph.subgraph(remaining)
    speeds = None
    if profile.gpu_speeds is not None:
        speeds = tuple(profile.gpu_speeds[g] for g in survivors)
    subprofile = CostProfile(
        graph=subgraph,
        concurrency=profile.concurrency,
        num_gpus=len(survivors),
        max_streams=profile.max_streams,
        send_blocking=profile.send_blocking,
        gpu_speeds=speeds,
    )
    result = schedule_graph(subprofile, algorithm, **kwargs)

    # map the compacted survivor indices back to the original GPU ids
    repaired = Schedule(profile.num_gpus)
    for idx, gpu in enumerate(survivors):
        for st in result.schedule.stages_on(idx):
            repaired.append_stage(Stage(gpu, st.ops))
    debug_lint_schedule(subgraph, repaired, algorithm=f"repair/{algorithm}")
    return RepairResult(
        failure=failure,
        survivors=survivors,
        subgraph=subgraph,
        schedule=repaired,
        result=result,
    )


def splice_traces(head: "ExecutionTrace", tail: "ExecutionTrace") -> "ExecutionTrace":
    """Combine a failed partial trace with its repaired tail.

    The tail's clock starts at zero; every tail timestamp is shifted by
    the head's failure time.  Finished head operators keep their
    pre-failure times, everything else takes the tail's.

    The tail may itself be *partial* (a later failure of the cascade):
    the combined trace then carries the tail's failure shifted onto the
    head clock, with the finished sets merged — so cascades splice
    associatively, ``splice(splice(a, b), c) == splice(a, splice(b, c))``,
    and :func:`run_with_repair` can left-fold one segment at a time.
    When the tail ran clean the combined trace keeps the head's
    ``failure`` marker so callers can tell a repaired run from a clean
    one (use :meth:`~repro.substrate.engine.ExecutionTrace.unfinished_ops`
    to tell "fully repaired" from "gave up mid-cascade").
    """
    from ..substrate.engine import ExecutionTrace  # local import avoids a cycle
    from ..substrate.faults import FailureEvent  # local import avoids a cycle

    if head.failure is None:
        raise RepairError("head trace did not fail; nothing to splice")
    at = head.failure.time
    done = head.failure.finished

    op_launch = {op: t for op, t in head.op_launch.items() if op in done}
    op_start = {op: t for op, t in head.op_start.items() if op in done}
    op_finish = {op: t for op, t in head.op_finish.items() if op in done}
    for op, t in tail.op_launch.items():
        op_launch[op] = t + at
    for op, t in tail.op_start.items():
        op_start[op] = t + at
    for op, t in tail.op_finish.items():
        op_finish[op] = t + at

    transfers = list(head.transfers) + [
        replace(
            rec,
            post_time=rec.post_time + at,
            start_time=rec.start_time + at,
            finish_time=rec.finish_time + at,
        )
        for rec in tail.transfers
    ]
    gpu_busy = dict(head.gpu_busy)
    for g, busy in tail.gpu_busy.items():
        gpu_busy[g] = gpu_busy.get(g, 0.0) + busy
    if tail.failure is None:
        failure = head.failure
    else:
        failure = FailureEvent(
            gpu=tail.failure.gpu,
            time=at + tail.failure.time,
            finished=done | tail.failure.finished,
            in_flight=tail.failure.in_flight,
        )
    return ExecutionTrace(
        latency=at + tail.latency,
        op_launch=op_launch,
        op_start=op_start,
        op_finish=op_finish,
        transfers=transfers,
        gpu_busy=gpu_busy,
        failure=failure,
    )


def run_with_repair(
    profile: CostProfile,
    schedule: Schedule,
    config: "EngineConfig | None" = None,
    algorithm: str = "hios-lp",
    max_repairs: int | None = None,
    strict: bool = True,
    **kwargs: Any,
) -> "tuple[ExecutionTrace, tuple[RepairResult, ...]]":
    """Execute ``schedule`` under ``config``; on GPU failures, keep
    repairing onto the survivors until a tail runs clean.

    Returns ``(trace, repairs)``: a clean run returns its trace and an
    empty tuple; a failed run returns the spliced trace of every
    segment plus one :class:`RepairResult` per repair round, in order.

    This generalizes the original single-failure contract (which
    stripped *all* faults from the tail and returned at most one
    repair): each tail now executes under
    :meth:`~repro.substrate.faults.FaultPlan.resume_after` — the
    original plan re-anchored to the tail clock with the dead GPU's
    specs dropped — so later failures strike the tail and trigger
    further repair rounds (*cascading repair*).  The loop ends when a
    tail completes, every operator turns out to have finished before
    the cut, ``max_repairs`` rounds are exhausted, or no survivor is
    left.  In the last two cases ``strict=True`` (default) raises
    :class:`RepairError`; ``strict=False`` instead returns the partial
    spliced trace — its ``failure`` marker set and
    ``trace.unfinished_ops(...)`` non-empty — so online callers (the
    serving simulator) can re-admit the displaced work elsewhere.
    """
    from ..substrate.engine import MultiGpuEngine  # local import avoids a cycle

    engine = MultiGpuEngine(config)
    cfg = engine.config
    trace = engine.run(profile.graph, schedule)
    repairs: list[RepairResult] = []
    dead: list[int] = []
    # a spliced trace keeps its failure marker even once fully repaired,
    # so the loop keys on completeness, not on the marker
    while trace.failure is not None and trace.unfinished_ops(profile.graph.names):
        failure = trace.failure
        if max_repairs is not None and len(repairs) >= max_repairs:
            if strict:
                raise RepairError(
                    f"repair budget exhausted: {len(repairs)} round(s) done "
                    f"and GPU {failure.gpu} failed again at t={failure.time:.3f}"
                )
            break
        try:
            repair = repair_schedule(
                profile, failure, algorithm=algorithm, dead=tuple(dead), **kwargs
            )
        except RepairError:
            if strict:
                raise
            break
        dead.append(failure.gpu)
        plan = cfg.faults.resume_after(failure.time, dead=dead) if cfg.faults else None
        tail_engine = MultiGpuEngine(replace(cfg, faults=plan if plan else None))
        tail = tail_engine.run(repair.subgraph, repair.schedule)
        repairs.append(repair)
        trace = splice_traces(trace, tail)
    return trace, tuple(repairs)
