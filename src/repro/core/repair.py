"""Degraded-mode schedule repair after a GPU failure.

When the engine fail-stops on an injected
:class:`~repro.substrate.faults.GpuFailure`, the run hands back a
:class:`~repro.substrate.faults.FailureEvent`: which operators finished
(their outputs survive on the host) and which were in flight (their
progress is lost).  :func:`repair_schedule` re-schedules the unfinished
subgraph onto the surviving GPUs with any registered algorithm — by
default HIOS-LP, i.e. the full list-scheduling + ``parallelize()``
machinery running in degraded mode — and :func:`splice_traces` glues
the partial pre-failure trace and the repaired tail into one combined
:class:`~repro.substrate.engine.ExecutionTrace`.

Model assumptions (kept deliberately simple, see DESIGN.md):

* fail-stop with host checkpointing — finished operators never
  re-execute, their outputs are re-staged to the survivors for free
  during failover;
* in-flight operators on *any* GPU restart from scratch (the global
  cut keeps the hand-off state consistent);
* the repaired tail faces the *remaining* fault plan
  (:meth:`~repro.substrate.faults.FaultPlan.resume_after`): failures
  that have not fired yet can strike the tail too, and
  :func:`run_with_repair` keeps repairing — head, repair, tail, repair,
  ... — until a tail runs clean or no survivor is left (cascading
  failures, generalizing the original single-failure model).

The substrate imports :mod:`repro.core`, so everything engine-facing
here is imported lazily inside the functions that need it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..costmodel.profile import CostProfile
from .debuglint import debug_lint_schedule
from .graph import OpGraph
from .result import ScheduleResult
from .schedule import Schedule, Stage

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..substrate.engine import EngineConfig, ExecutionTrace
    from ..substrate.faults import FailureEvent
    from ..sweep.schedcache import ScheduleCache

__all__ = [
    "RepairError",
    "RepairResult",
    "ResizeResult",
    "repair_schedule",
    "resize_schedule",
    "run_with_repair",
    "splice_traces",
]

#: A warm-started repair whose latency exceeds this multiple of the
#: analytic lower bound is double-checked against a cold run (the
#: cheaper of the two wins).  Within the margin the warm schedule is
#: provably close enough to optimal that the cold run cannot beat it
#: by much — skipping it is the whole point of warm-starting.
WARM_START_MARGIN = 1.5


class RepairError(RuntimeError):
    """Raised when a failed run cannot be repaired (no survivors, ...)."""


@dataclass(frozen=True)
class RepairResult:
    """Outcome of re-scheduling the unfinished subgraph.

    ``schedule`` uses the *original* GPU indices (the failed GPU hosts
    nothing); ``result`` is the raw scheduler output on the compacted
    survivor indices, kept for its latency prediction and stats.
    ``warm_started`` records whether the spatial mapping was seeded
    from the pre-failure schedule instead of recomputed from scratch.
    """

    failure: "FailureEvent"
    survivors: tuple[int, ...]
    subgraph: OpGraph
    schedule: Schedule
    result: ScheduleResult
    warm_started: bool = False

    @property
    def algorithm(self) -> str:
        return self.result.algorithm

    @property
    def predicted_tail_latency(self) -> float:
        return self.result.latency


def _surviving_gpus(
    num_gpus: int, failure: "FailureEvent", dead: tuple[int, ...] = ()
) -> tuple[int, ...]:
    if not (0 <= failure.gpu < num_gpus):
        raise RepairError(
            f"failure names GPU {failure.gpu} but the profile has "
            f"{num_gpus} GPU(s)"
        )
    gone = set(dead) | {failure.gpu}
    survivors = tuple(g for g in range(num_gpus) if g not in gone)
    if not survivors:
        raise RepairError("no surviving GPU to repair onto")
    return survivors


def _warm_spatial_seed(
    subgraph: OpGraph, previous: Schedule, survivors: tuple[int, ...]
) -> dict[str, int] | None:
    """Project ``previous`` (original GPU ids) onto the repair subgraph.

    Every remaining operator that lived on a survivor keeps its GPU
    (compacted to the survivor index space); operators stranded on dead
    GPUs are re-homed greedily onto the least-loaded survivor.  Returns
    ``None`` when the previous schedule does not cover the subgraph
    (nothing sound to project).
    """
    slot = {g: i for i, g in enumerate(survivors)}
    prev_gpu: dict[str, int] = {}
    for g in range(previous.num_gpus):
        for st in previous.stages_on(g):
            for op in st.ops:
                prev_gpu[op] = g
    assignment: dict[str, int] = {}
    stranded: list[str] = []
    for v in subgraph.names:
        g = prev_gpu.get(v)
        if g is None:
            return None
        if g in slot:
            assignment[v] = slot[g]
        else:
            stranded.append(v)
    load = [0.0] * len(survivors)
    for v, i in assignment.items():
        load[i] += subgraph.cost(v)
    for v in sorted(stranded):
        i = min(range(len(survivors)), key=lambda j: (load[j], j))
        assignment[v] = i
        load[i] += subgraph.cost(v)
    return assignment


def _plan_subgraph(
    subprofile: CostProfile,
    subgraph: OpGraph,
    seed_assignment: dict[str, int] | None,
    algorithm: str,
    sched_cache: "ScheduleCache | None",
    **kwargs: Any,
) -> tuple[ScheduleResult, bool]:
    """Schedule ``subgraph`` on ``subprofile``, warm-started when possible.

    ``seed_assignment`` (op -> compacted GPU index) primes the
    scheduler's spatial mapping through the ``spatial_cache`` seam; the
    warm schedule is kept when its latency is within
    :data:`WARM_START_MARGIN` of the analytic lower bound, otherwise a
    cold run is computed too and the cheaper of the two wins.  Cold
    runs are served from ``sched_cache`` when one is given; warm
    results are never persisted (they are seeded by run-specific
    state).  Returns ``(result, warm_started)``.
    """
    from .api import schedule_graph  # local: avoids a cycle
    from .bounds import latency_lower_bound
    from .priority import priority_order

    def cold_schedule() -> ScheduleResult:
        if sched_cache is not None:
            from ..sweep.schedcache import cached_schedule  # local: sweep is optional here

            cold, _hit = cached_schedule(
                subprofile, algorithm, cache=sched_cache, **kwargs
            )
            return cold
        return schedule_graph(subprofile, algorithm, **kwargs)

    if seed_assignment is None:
        return cold_schedule(), False
    order = priority_order(subgraph)
    spatial_cache: dict[str, Any] = {
        "lp": (dict(seed_assignment), list(order), 0),
        "mr": (dict(seed_assignment), list(order)),
    }
    warm = schedule_graph(subprofile, algorithm, spatial_cache=spatial_cache, **kwargs)
    if warm.latency <= WARM_START_MARGIN * latency_lower_bound(subprofile):
        return warm, True
    cold = cold_schedule()
    if warm.latency <= cold.latency:
        return warm, True
    return cold, False


def repair_schedule(
    profile: CostProfile,
    failure: "FailureEvent",
    algorithm: str = "hios-lp",
    dead: tuple[int, ...] = (),
    warm_start_from: Schedule | None = None,
    sched_cache: "ScheduleCache | None" = None,
    **kwargs: Any,
) -> RepairResult:
    """Re-schedule the unfinished subgraph onto the surviving GPUs.

    ``algorithm`` accepts any :data:`repro.core.api.ALGORITHMS` name and
    ``kwargs`` are forwarded to it, mirroring ``schedule_graph``; the
    default runs HIOS-LP in degraded mode.  ``dead`` names GPUs lost in
    *earlier* failures of a cascade — they are excluded from the
    survivor set along with ``failure.gpu``.  Edges from finished
    producers are dropped (their tensors are host-checkpointed and
    re-staged during failover), making their consumers sources of the
    repair subgraph.

    ``warm_start_from`` seeds the scheduler's spatial mapping from the
    surviving-GPU projection of the pre-failure schedule (through the
    ``spatial_cache`` seam), skipping the expensive Alg. 1/3 phase —
    the usual case where the survivors keep their operators and only
    the dead GPU's share moves.  The warm schedule is kept when its
    latency is within :data:`WARM_START_MARGIN` of the analytic lower
    bound; otherwise a cold run is computed too and the better of the
    two wins.  ``sched_cache`` serves *cold* repairs from the
    persistent schedule cache (warm-started results are seeded by a
    run-specific schedule and are never persisted).
    """
    from .api import SPATIAL_CACHE_ALGORITHMS  # local: avoids a cycle

    remaining = failure.unfinished(profile.graph.names)
    if not remaining:
        raise RepairError("nothing to repair: every operator already finished")
    survivors = _surviving_gpus(profile.num_gpus, failure, dead)

    subgraph = profile.graph.subgraph(remaining)
    speeds = None
    if profile.gpu_speeds is not None:
        speeds = tuple(profile.gpu_speeds[g] for g in survivors)
    subprofile = CostProfile(
        graph=subgraph,
        concurrency=profile.concurrency,
        num_gpus=len(survivors),
        max_streams=profile.max_streams,
        send_blocking=profile.send_blocking,
        gpu_speeds=speeds,
    )

    seed: dict[str, int] | None = None
    if warm_start_from is not None and algorithm in SPATIAL_CACHE_ALGORITHMS:
        seed = _warm_spatial_seed(subgraph, warm_start_from, survivors)
    result, warm_started = _plan_subgraph(
        subprofile, subgraph, seed, algorithm, sched_cache, **kwargs
    )

    # map the compacted survivor indices back to the original GPU ids
    repaired = Schedule(profile.num_gpus)
    for idx, gpu in enumerate(survivors):
        for st in result.schedule.stages_on(idx):
            repaired.append_stage(Stage(gpu, st.ops))
    debug_lint_schedule(subgraph, repaired, algorithm=f"repair/{algorithm}")
    return RepairResult(
        failure=failure,
        survivors=survivors,
        subgraph=subgraph,
        schedule=repaired,
        result=result,
        warm_started=warm_started,
    )


@dataclass(frozen=True)
class ResizeResult:
    """Outcome of re-scheduling an in-flight query onto a new lease width.

    Unlike :class:`RepairResult`, the schedule lives in the *new* lease's
    local index space (``0 .. profile.num_gpus - 1``) — the caller owns
    the lease-local → pool mapping.  ``warm_started`` records whether the
    spatial mapping was projected from the pre-resize schedule.
    """

    subgraph: OpGraph
    subprofile: CostProfile
    schedule: Schedule
    result: ScheduleResult
    warm_started: bool = False

    @property
    def predicted_tail_latency(self) -> float:
        return self.result.latency


def resize_schedule(
    profile: CostProfile,
    finished: frozenset[str] | set[str],
    prev_assignment: dict[str, int] | None = None,
    slot_map: dict[int, int] | None = None,
    algorithm: str = "hios-lp",
    sched_cache: "ScheduleCache | None" = None,
    **kwargs: Any,
) -> ResizeResult:
    """Re-schedule the unfinished operators onto an elastically resized lease.

    ``profile`` is the model's cost profile *at the new lease width*
    (``profile.num_gpus`` GPUs); ``finished`` names the operators whose
    outputs already live on the host checkpoint and never re-execute.
    ``prev_assignment`` maps operators to the old lease-local GPU they
    were running on before the resize and ``slot_map`` maps old
    lease-local indices to new ones for the GPUs kept across the
    resize; together they seed the scheduler's spatial mapping through
    the same warm-start seam as :func:`repair_schedule` — operators on
    kept GPUs stay put, operators on dropped GPUs are re-homed onto the
    least-loaded slot.  Cold runs are served from ``sched_cache``.
    """
    from .api import SPATIAL_CACHE_ALGORITHMS  # local: avoids a cycle

    remaining = tuple(v for v in profile.graph.names if v not in finished)
    if not remaining:
        raise RepairError("nothing to resize: every operator already finished")
    subgraph = profile.graph.subgraph(remaining)
    subprofile = CostProfile(
        graph=subgraph,
        concurrency=profile.concurrency,
        num_gpus=profile.num_gpus,
        max_streams=profile.max_streams,
        send_blocking=profile.send_blocking,
        gpu_speeds=profile.gpu_speeds,
    )

    seed: dict[str, int] | None = None
    if prev_assignment is not None and algorithm in SPATIAL_CACHE_ALGORITHMS:
        seed = _resize_spatial_seed(
            subgraph, prev_assignment, slot_map or {}, profile.num_gpus
        )
    result, warm_started = _plan_subgraph(
        subprofile, subgraph, seed, algorithm, sched_cache, **kwargs
    )
    debug_lint_schedule(subgraph, result.schedule, algorithm=f"resize/{algorithm}")
    return ResizeResult(
        subgraph=subgraph,
        subprofile=subprofile,
        schedule=result.schedule,
        result=result,
        warm_started=warm_started,
    )


def _resize_spatial_seed(
    subgraph: OpGraph,
    prev_assignment: dict[str, int],
    slot_map: dict[int, int],
    new_width: int,
) -> dict[str, int] | None:
    """Project ``prev_assignment`` through ``slot_map`` onto the new width.

    Remaining operators on a kept GPU follow it to its new slot;
    operators on dropped slots are re-homed greedily onto the
    least-loaded new slot.  Returns ``None`` when ``prev_assignment``
    does not cover the subgraph or maps outside the new width.
    """
    assignment: dict[str, int] = {}
    stranded: list[str] = []
    for v in subgraph.names:
        g = prev_assignment.get(v)
        if g is None:
            return None
        slot = slot_map.get(g)
        if slot is None:
            stranded.append(v)
        elif not (0 <= slot < new_width):
            return None
        else:
            assignment[v] = slot
    load = [0.0] * new_width
    for v, i in assignment.items():
        load[i] += subgraph.cost(v)
    for v in sorted(stranded):
        i = min(range(new_width), key=lambda j: (load[j], j))
        assignment[v] = i
        load[i] += subgraph.cost(v)
    return assignment


def splice_traces(head: "ExecutionTrace", tail: "ExecutionTrace") -> "ExecutionTrace":
    """Combine a failed partial trace with its repaired tail.

    The tail's clock starts at zero; every tail timestamp is shifted by
    the head's failure time.  Finished head operators keep their
    pre-failure times, everything else takes the tail's.

    The tail may itself be *partial* (a later failure of the cascade):
    the combined trace then carries the tail's failure shifted onto the
    head clock, with the finished sets merged — so cascades splice
    associatively, ``splice(splice(a, b), c) == splice(a, splice(b, c))``,
    and :func:`run_with_repair` can left-fold one segment at a time.
    When the tail ran clean the combined trace keeps the head's
    ``failure`` marker so callers can tell a repaired run from a clean
    one (use :meth:`~repro.substrate.engine.ExecutionTrace.unfinished_ops`
    to tell "fully repaired" from "gave up mid-cascade").
    """
    from ..substrate.engine import ExecutionTrace  # local import avoids a cycle
    from ..substrate.faults import FailureEvent  # local import avoids a cycle

    if head.failure is None:
        raise RepairError("head trace did not fail; nothing to splice")
    at = head.failure.time
    done = head.failure.finished

    op_launch = {op: t for op, t in head.op_launch.items() if op in done}
    op_start = {op: t for op, t in head.op_start.items() if op in done}
    op_finish = {op: t for op, t in head.op_finish.items() if op in done}
    for op, t in tail.op_launch.items():
        op_launch[op] = t + at
    for op, t in tail.op_start.items():
        op_start[op] = t + at
    for op, t in tail.op_finish.items():
        op_finish[op] = t + at

    transfers = list(head.transfers) + [
        replace(
            rec,
            post_time=rec.post_time + at,
            start_time=rec.start_time + at,
            finish_time=rec.finish_time + at,
        )
        for rec in tail.transfers
    ]
    gpu_busy = dict(head.gpu_busy)
    for g, busy in tail.gpu_busy.items():
        gpu_busy[g] = gpu_busy.get(g, 0.0) + busy
    if tail.failure is None:
        failure = head.failure
    else:
        failure = FailureEvent(
            gpu=tail.failure.gpu,
            time=at + tail.failure.time,
            finished=done | tail.failure.finished,
            in_flight=tail.failure.in_flight,
        )
    return ExecutionTrace(
        latency=at + tail.latency,
        op_launch=op_launch,
        op_start=op_start,
        op_finish=op_finish,
        transfers=transfers,
        gpu_busy=gpu_busy,
        failure=failure,
    )


def run_with_repair(
    profile: CostProfile,
    schedule: Schedule,
    config: "EngineConfig | None" = None,
    algorithm: str = "hios-lp",
    max_repairs: int | None = None,
    strict: bool = True,
    warm_start: bool = False,
    sched_cache: "ScheduleCache | None" = None,
    **kwargs: Any,
) -> "tuple[ExecutionTrace, tuple[RepairResult, ...]]":
    """Execute ``schedule`` under ``config``; on GPU failures, keep
    repairing onto the survivors until a tail runs clean.

    Returns ``(trace, repairs)``: a clean run returns its trace and an
    empty tuple; a failed run returns the spliced trace of every
    segment plus one :class:`RepairResult` per repair round, in order.

    This generalizes the original single-failure contract (which
    stripped *all* faults from the tail and returned at most one
    repair): each tail now executes under
    :meth:`~repro.substrate.faults.FaultPlan.resume_after` — the
    original plan re-anchored to the tail clock with the dead GPU's
    specs dropped — so later failures strike the tail and trigger
    further repair rounds (*cascading repair*).  The loop ends when a
    tail completes, every operator turns out to have finished before
    the cut, ``max_repairs`` rounds are exhausted, or no survivor is
    left.  In the last two cases ``strict=True`` (default) raises
    :class:`RepairError`; ``strict=False`` instead returns the partial
    spliced trace — its ``failure`` marker set and
    ``trace.unfinished_ops(...)`` non-empty — so online callers (the
    serving simulator) can re-admit the displaced work elsewhere.

    ``warm_start=True`` seeds each repair round's spatial mapping from
    the schedule the failed segment was running (the original schedule
    for the first round, the previous repair for later rounds of a
    cascade); ``sched_cache`` forwards a persistent schedule cache for
    cold repairs.  See :func:`repair_schedule`.
    """
    from ..substrate.engine import MultiGpuEngine  # local import avoids a cycle

    engine = MultiGpuEngine(config)
    cfg = engine.config
    trace = engine.run(profile.graph, schedule)
    repairs: list[RepairResult] = []
    dead: list[int] = []
    # a spliced trace keeps its failure marker even once fully repaired,
    # so the loop keys on completeness, not on the marker
    while trace.failure is not None and trace.unfinished_ops(profile.graph.names):
        failure = trace.failure
        if max_repairs is not None and len(repairs) >= max_repairs:
            if strict:
                raise RepairError(
                    f"repair budget exhausted: {len(repairs)} round(s) done "
                    f"and GPU {failure.gpu} failed again at t={failure.time:.3f}"
                )
            break
        previous = repairs[-1].schedule if repairs else schedule
        try:
            repair = repair_schedule(
                profile,
                failure,
                algorithm=algorithm,
                dead=tuple(dead),
                warm_start_from=previous if warm_start else None,
                sched_cache=sched_cache,
                **kwargs,
            )
        except RepairError:
            if strict:
                raise
            break
        dead.append(failure.gpu)
        plan = cfg.faults.resume_after(failure.time, dead=dead) if cfg.faults else None
        tail_engine = MultiGpuEngine(replace(cfg, faults=plan if plan else None))
        tail = tail_engine.run(repair.subgraph, repair.schedule)
        repairs.append(repair)
        trace = splice_traces(trace, tail)
    return trace, tuple(repairs)
