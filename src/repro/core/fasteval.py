"""Incremental evaluation engine for the scheduler inner loops.

The HIOS schedulers are *evaluation-bound*: almost all of their time is
spent pricing candidate schedules that differ from an already-priced
schedule in one small, known way.  The reference implementations
(:func:`repro.core.list_schedule.list_schedule_latency` and
:func:`repro.core.evaluator.evaluate_schedule`) re-simulate the entire
schedule from scratch for every candidate; this module exploits the
known delta instead — the engineering discipline IOS (Ding et al.,
MLSys'21) applies to its DP states, applied to our three inner loops:

:class:`PrefixReplayer`
    Incremental list scheduling.  Across the ``M`` GPU candidates for
    one HIOS-LP path — and across the moves of one operator in the
    local-search pass — only the assignment of a known set of
    *varying* operators changes.  List scheduling processes operators
    in a fixed priority order and operator ``v``'s placement reads only
    (a) the assignment of ``v`` and its predecessors and, under the
    sender-blocking model, (b) the assignments of the successors of
    every operator processed so far.  Hence the simulated prefix up to
    the first operator that reads a varying assignment is *identical
    for every candidate*: :meth:`PrefixReplayer.snapshot` simulates it
    once and checkpoints ``(finish, arrival, gpu_free, latency)``;
    :meth:`PrefixReplayer.replay` re-simulates only the suffix.

:class:`StageGraphEvaluator`
    Reusable stage-graph evaluation for Alg. 2.  A ``parallelize``
    window candidate merges ``p+1`` consecutive singleton stages of one
    GPU into one stage; every other stage, every edge classification
    (chain / local / remote) and every sorted send order is unchanged.
    The evaluator builds those structures once per schedule and prices
    each candidate by running the forward stage DP with a small
    *window-merge delta* (a representative-node remap of the merged
    stages) instead of reconstructing the stage graph per candidate as
    ``evaluate_schedule`` does.

    Internally the evaluator stores the stage graph in a
    **struct-of-arrays layout** (DESIGN.md §14): numpy arrays hold the
    stage durations, the per-GPU sequential chains and the flattened
    CSR edge lists (local targets, remote targets + transfer costs,
    per-source deduplicated successor sets), and the forward DP is a
    topological sweep over int-indexed arrays — no per-stage dicts,
    sets or string keys in the inner loop.  A window candidate adjusts
    the committed in-degree array incrementally around the merged
    members instead of re-deriving it from every edge.

:func:`soa_latency`
    One-shot SoA evaluation of a committed schedule — the same floats
    as :func:`repro.core.evaluator.evaluate_schedule`, produced by the
    array sweep (used by the schedulers' final evaluations when
    ``fast=True``).

All paths are differentially tested bit-identical — latencies *and*
schedules — against the retained reference implementations
(``tests/core/test_fasteval.py``); the schedulers expose
``fast=False`` to fall back to the references at runtime.
:class:`EvalCounters` makes the win observable through
``ScheduleResult.stats``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..costmodel.profile import CostProfile
from .graph import OpGraph
from .schedule import Schedule, ScheduleError, Stage

__all__ = ["EvalCounters", "PrefixReplayer", "StageGraphEvaluator", "soa_latency"]


@dataclass
class EvalCounters:
    """Observable counters for the incremental engine.

    Attributes
    ----------
    evals:
        Full from-scratch evaluations: prefix simulations of the list
        scheduler plus stage-graph (re)builds and full DP runs.
    suffix_replays:
        List-schedule queries answered by replaying only the suffix
        after a :meth:`PrefixReplayer.snapshot` checkpoint.
    window_delta_evals:
        Alg. 2 window candidates priced via a stage-graph merge delta
        instead of a full reconstruction.
    soa_evals:
        Stage-DP runs answered by the struct-of-arrays sweep (committed
        evaluations plus window deltas plus :func:`soa_latency` calls).
    cache_hits:
        ``CostProfile.stage_time`` memo hits observed during the run
        (filled in by the schedulers from the profile's counter).
    """

    evals: int = 0
    suffix_replays: int = 0
    window_delta_evals: int = 0
    soa_evals: int = 0
    cache_hits: int = 0

    def to_stats(self) -> dict[str, int]:
        return {
            "evals": self.evals,
            "suffix_replays": self.suffix_replays,
            "window_delta_evals": self.window_delta_evals,
            "soa_evals": self.soa_evals,
            "cache_hits": self.cache_hits,
        }


class PrefixReplayer:
    """Prefix-state snapshotting for the temporal list scheduler.

    Semantically equivalent to calling
    :func:`~repro.core.list_schedule.list_schedule_latency` per
    candidate; bit-identical because the simulation below performs the
    exact float operations of the reference, in the same order.

    Usage::

        rp = PrefixReplayer(graph, num_gpus, send_blocking, gpu_speeds)
        rp.snapshot(order, assignment, varying=path_vertices)
        for gpu in range(num_gpus):
            ...mutate assignment of the varying operators...
            latency = rp.replay(assignment)

    **Snapshot-reuse invariant.**  A checkpoint taken at boundary ``k``
    is valid for any assignment that differs from the snapshot-time one
    only on ``varying``: processing ``order[i]`` reads the assignments
    of ``order[i]`` itself, of its predecessors, and — sender-blocking
    only — the successors of ``order[i]``; the boundary is the first
    position whose processing reads a varying operator (the varying
    operator's own position, or under sender blocking the position of
    any of its predecessors, whichever comes first).

    **Int lowering, no-restore replay.**  The simulation state lives in
    int-indexed flat lists — operator ids instead of names, a per-edge
    arrival slot instead of an ``(u, v)``-keyed dict — and a replay
    writes into the shared ``finish`` / ``arrival`` buffers without
    restoring them afterwards.  That is sound because every value a
    replay reads was written either by the same replay or by the
    prefix: the order is topological, so ``finish[u]`` is rewritten
    before any read; and an ``arrival`` slot ``(u, v)`` is read only
    when the current assignment splits ``u`` and ``v``, which is
    exactly the condition under which processing ``u`` (this replay if
    ``u`` is in the suffix) rewrote it.  A prefix operator cannot have
    a varying successor — the boundary sits at or before every
    predecessor of a varying operator under blocking — so prefix-written
    slots stay valid across candidates.  Stale values from earlier
    replays are therefore never observed.
    """

    def __init__(
        self,
        graph: OpGraph,
        num_gpus: int,
        send_blocking: bool = True,
        gpu_speeds: Sequence[float] | None = None,
        counters: EvalCounters | None = None,
    ) -> None:
        self._num_gpus = num_gpus
        self._blocking = send_blocking
        self._speeds: list[float] | None = (
            list(gpu_speeds) if gpu_speeds is not None else None
        )
        self.counters = counters if counters is not None else EvalCounters()
        names = graph.names
        self._names: list[str] = names
        index = {v: i for i, v in enumerate(names)}
        self._index: dict[str, int] = index
        n = len(names)
        self._n = n
        # successor CSR in the reference's deterministic send order
        # (sorted consumer names); the CSR position is the edge id that
        # addresses the flat per-edge arrival buffer
        sptr = [0]
        sdst: list[int] = []
        sw: list[float] = []
        edge_id: dict[tuple[str, str], int] = {}
        for v in names:
            for s in sorted(graph.successors(v)):
                edge_id[(v, s)] = len(sdst)
                sdst.append(index[s])
                sw.append(graph.transfer(v, s))
            sptr.append(len(sdst))
        self._sptr = sptr
        self._sdst = sdst
        self._sw = sw
        # predecessor CSR carrying each edge's transfer weight and its
        # arrival-slot id
        pptr = [0]
        psrc: list[int] = []
        pw: list[float] = []
        pedge: list[int] = []
        for v in names:
            for u in graph.predecessors(v):
                psrc.append(index[u])
                pw.append(graph.transfer(u, v))
                pedge.append(edge_id[(u, v)])
            pptr.append(len(psrc))
        self._pptr = pptr
        self._psrc = psrc
        self._pw = pw
        self._pedge = pedge
        self._cost: list[float] = [graph.cost(v) for v in names]
        self._num_edges = len(sdst)
        # checkpoint state (int-indexed)
        self._order_ids: list[int] = []
        self._k = 0
        self._assign: list[int] = [-1] * n
        self._varying: list[tuple[int, str]] = []
        self._finish: list[float] = [0.0] * n
        self._arrival: list[float] = [0.0] * self._num_edges
        self._gpu_free: list[float] = [0.0] * num_gpus
        self._latency = 0.0

    # ------------------------------------------------------------------
    def _simulate(
        self,
        assign: list[int],
        order: list[int],
        start: int,
        stop: int,
        finish: list[float],
        arrival: list[float],
        gpu_free: list[float],
        latency: float,
    ) -> float:
        """Exact mirror of ``list_schedule_latency``'s inner loop over
        ``order[start:stop]``, mutating the carried state in place.
        Performs the reference's float operations in the reference's
        order — only the indexing is lowered to ints."""
        blocking = self._blocking
        speeds = self._speeds
        pptr = self._pptr
        psrc = self._psrc
        pw = self._pw
        pedge = self._pedge
        sptr = self._sptr
        sdst = self._sdst
        sw = self._sw
        cost = self._cost
        for i in range(start, stop):
            v = order[i]
            g = assign[v]
            t = gpu_free[g]
            for pi in range(pptr[v], pptr[v + 1]):
                u = psrc[pi]
                gu = assign[u]
                if gu < 0:
                    continue  # still unscheduled in this iteration
                if gu == g:
                    ready = finish[u]
                elif blocking:
                    ready = arrival[pedge[pi]]
                else:
                    ready = finish[u] + pw[pi]
                if ready > t:
                    t = ready
            speed = 1.0 if speeds is None else speeds[g]
            end = t + cost[v] / speed
            finish[v] = end
            if blocking:
                cursor = end
                for si in range(sptr[v], sptr[v + 1]):
                    gs = assign[sdst[si]]
                    if gs < 0 or gs == g:
                        continue
                    cursor += sw[si]
                    arrival[si] = cursor
                gpu_free[g] = cursor
                if cursor > latency:
                    latency = cursor
            else:
                gpu_free[g] = end
            if end > latency:
                latency = end
        return latency

    def prefix_boundary(self, order: Sequence[str], varying: Iterable[str]) -> int:
        """First position of ``order`` whose processing reads the
        assignment of any operator in ``varying``."""
        positions = {v: i for i, v in enumerate(order)}
        names = self._names
        pptr = self._pptr
        psrc = self._psrc
        k = len(order)
        for v in varying:
            pos = positions.get(v)
            if pos is None:
                continue
            if pos < k:
                k = pos
            if self._blocking:
                # a predecessor issues (or skips) a blocking send to v
                # depending on v's assignment
                vi = self._index[v]
                for pi in range(pptr[vi], pptr[vi + 1]):
                    pu = positions.get(names[psrc[pi]])
                    if pu is not None and pu < k:
                        k = pu
        return k

    def snapshot(
        self,
        order: Sequence[str],
        assignment: Mapping[str, int],
        varying: Iterable[str],
    ) -> int:
        """Simulate the candidate-invariant prefix once and checkpoint
        the state; returns the boundary index."""
        varying = list(varying)
        k = self.prefix_boundary(order, varying)
        index = self._index
        self._order_ids = [index[v] for v in order]
        self._k = k
        assign = [-1] * self._n
        for v, g in assignment.items():
            assign[index[v]] = g
        self._assign = assign
        self._varying = [(index[v], v) for v in varying]
        self._finish = [0.0] * self._n
        self._arrival = [0.0] * self._num_edges
        self._gpu_free = [0.0] * self._num_gpus
        self.counters.evals += 1
        self._latency = self._simulate(
            assign, self._order_ids, 0, k, self._finish, self._arrival,
            self._gpu_free, 0.0,
        )
        return k

    def replay(self, assignment: Mapping[str, int]) -> float:
        """Latency of list-scheduling the full order under
        ``assignment``, re-simulating only the suffix after the last
        :meth:`snapshot`.

        Per the snapshot-reuse invariant, ``assignment`` may differ
        from the snapshot-time mapping only on the ``varying``
        operators — only their entries are re-read here.
        """
        self.counters.suffix_replays += 1
        assign = self._assign
        get = assignment.get
        for vi, name in self._varying:
            g = get(name)
            assign[vi] = -1 if g is None else g
        gpu_free = list(self._gpu_free)
        return self._simulate(
            assign, self._order_ids, self._k, len(self._order_ids),
            self._finish, self._arrival, gpu_free, self._latency,
        )


class StageGraphEvaluator:
    """Reusable stage-graph evaluation for the Alg. 2 window sweep.

    Builds the stage graph — operator-to-stage map, per-stage chain /
    local / remote edge lists with the deterministic ``(producer,
    consumer)`` send order, and stage durations — once per schedule in
    a struct-of-arrays layout, then prices each window candidate with
    :meth:`try_merge` by running the int-indexed forward DP under a
    merge delta.  Produces exactly the floats of
    :func:`repro.core.evaluator.evaluate_schedule`: every start time is
    a pure max-merge over its incoming constraints and every send
    cursor accumulates in the same deterministic ``(producer,
    consumer)`` order, so the sweep's processing order cannot change a
    single bit.
    """

    def __init__(
        self,
        profile: CostProfile,
        schedule: Schedule,
        counters: EvalCounters | None = None,
    ) -> None:
        self.counters = counters if counters is not None else EvalCounters()
        self._profile = profile
        self._blocking = profile.send_blocking
        graph: OpGraph = profile.graph
        stages = schedule.all_stages()
        self._stages = stages
        n = len(stages)
        self._n = n

        op_stage: dict[str, int] = {}
        for idx, st in enumerate(stages):
            for op in st.ops:
                op_stage[op] = idx

        by_gpu: dict[int, list[int]] = {}
        for idx, st in enumerate(stages):
            by_gpu.setdefault(st.gpu, []).append(idx)
        self._by_gpu = by_gpu
        chain_next: list[int | None] = [None] * n
        for chain in by_gpu.values():
            for a, b in zip(chain, chain[1:]):
                chain_next[a] = b
        self._chain_next = chain_next

        local_sets: list[set[int]] = [set() for _ in range(n)]
        remote_lists: list[list[tuple[float, int, str, str]]] = [[] for _ in range(n)]
        for u, v, w in graph.edges():
            su, sv = op_stage[u], op_stage[v]
            if su == sv:
                raise ScheduleError(
                    f"dependent operators {u!r} -> {v!r} share a stage"
                )
            if stages[su].gpu == stages[sv].gpu:
                local_sets[su].add(sv)
            else:
                remote_lists[su].append((w, sv, u, v))
        for lst in remote_lists:
            # deterministic send order: producer then consumer name
            lst.sort(key=lambda e: (e[2], e[3]))
        self._local: list[tuple[int, ...]] = [tuple(s) for s in local_sets]
        self._remote: list[tuple[tuple[float, int, str, str], ...]] = [
            tuple(lst) for lst in remote_lists
        ]

        # per-source dedup'd target list (all constraint kinds) and the
        # reverse map used to find sources with an edge into a window
        succ_unique: list[tuple[int, ...]] = []
        rev_sources: list[set[int]] = [set() for _ in range(n)]
        for s in range(n):
            targets = set(local_sets[s])
            targets.update(sv for _w, sv, _u, _v in remote_lists[s])
            nxt = chain_next[s]
            if nxt is not None:
                targets.add(nxt)
            succ_unique.append(tuple(targets))
            for t in targets:
                rev_sources[t].add(s)
        self._succ_unique = succ_unique
        self._rev_sources: list[tuple[int, ...]] = [tuple(s) for s in rev_sources]

        self._duration: list[float] = [
            profile.stage_time(st.ops, gpu=st.gpu) for st in stages
        ]

        # ---- struct-of-arrays layout (DESIGN.md §14) -----------------
        # Canonical numpy arrays: stage times, per-GPU chain successor
        # (-1 = end of chain), flattened CSR edge lists, committed
        # in-degrees.  The DP sweeps int-indexed Python lists derived
        # from them once here — scalar indexing into lists is what the
        # tight Kahn loop wants, while the arrays give bulk copies and
        # a compact, introspectable layout.
        self._dur_arr = np.asarray(self._duration, dtype=np.float64)
        self._chain_arr = np.asarray(
            [c if c is not None else -1 for c in chain_next], dtype=np.int64
        )
        rptr = [0]
        rdst: list[int] = []
        rw: list[float] = []
        lptr = [0]
        ldst: list[int] = []
        sptr = [0]
        sdst: list[int] = []
        for s in range(n):
            for w, sv, _u, _v in self._remote[s]:
                rw.append(w)
                rdst.append(sv)
            rptr.append(len(rdst))
            ldst.extend(self._local[s])
            lptr.append(len(ldst))
            sdst.extend(succ_unique[s])
            sptr.append(len(sdst))
        self._rw_arr = np.asarray(rw, dtype=np.float64)
        self._rdst_arr = np.asarray(rdst, dtype=np.int64)
        self._rptr_arr = np.asarray(rptr, dtype=np.int64)
        self._ldst_arr = np.asarray(ldst, dtype=np.int64)
        self._lptr_arr = np.asarray(lptr, dtype=np.int64)
        self._sdst_arr = np.asarray(sdst, dtype=np.int64)
        self._sptr_arr = np.asarray(sptr, dtype=np.int64)
        indeg0 = np.zeros(n, dtype=np.int64)
        if sdst:
            np.add.at(indeg0, self._sdst_arr, 1)
        self._indeg0_arr = indeg0

        # list mirrors for the scalar sweep
        self._dur_l: list[float] = self._dur_arr.tolist()
        self._chain_l: list[int] = self._chain_arr.tolist()
        self._rw_l: list[float] = self._rw_arr.tolist()
        self._rdst_l: list[int] = self._rdst_arr.tolist()
        self._rptr_l: list[int] = self._rptr_arr.tolist()
        self._ldst_l: list[int] = self._ldst_arr.tolist()
        self._lptr_l: list[int] = self._lptr_arr.tolist()
        self._sdst_l: list[int] = self._sdst_arr.tolist()
        self._sptr_l: list[int] = self._sptr_arr.tolist()
        self._indeg0_l: list[int] = self._indeg0_arr.tolist()
        self._identity: list[int] = list(range(n))

    # ------------------------------------------------------------------
    def evaluate(self) -> float:
        """Latency of the committed schedule (full DP, no delta).

        Raises :class:`ScheduleError` when the stage graph is cyclic.
        """
        self.counters.evals += 1
        latency = self._run_dp(None)
        if latency is None:
            raise ScheduleError("stage graph contains a cycle")
        return latency

    def try_merge(self, gpu: int, pos: int, p: int, group: tuple[str, ...]) -> float | None:
        """Latency of the candidate merging the ``p + 1`` consecutive
        singleton stages at positions ``pos .. pos + p`` of ``gpu``'s
        stage list into one stage executing ``group``.

        Returns ``None`` when the merged stage graph is cyclic (the
        candidate Alg. 2 must reject).  The committed structures are
        not modified.
        """
        members = self._by_gpu[gpu][pos : pos + p + 1]
        self.counters.window_delta_evals += 1
        return self._run_dp((members, group, gpu))

    # ------------------------------------------------------------------
    def _run_dp(
        self, merge: tuple[list[int], tuple[str, ...], int] | None
    ) -> float | None:
        """Forward stage DP over the struct-of-arrays layout, optionally
        under a window-merge delta.

        The merged stages are contracted onto a representative node
        (the first member); edge targets are remapped through an int
        array at use, which is exactly the stage graph
        ``evaluate_schedule`` would rebuild for the candidate.  Start
        times are pure max-merges and per-source send cursors accumulate
        in the committed sorted order, so the values are independent of
        the sweep's processing order — bit-identical to the reference.
        """
        n = self._n
        blocking = self._blocking
        dur = self._dur_l
        chain = self._chain_l
        rw = self._rw_l
        rdst = self._rdst_l
        rptr = self._rptr_l
        ldst = self._ldst_l
        lptr = self._lptr_l
        sdst = self._sdst_l
        sptr = self._sptr_l
        self.counters.soa_evals += 1

        rep = -1
        rep_of = self._identity
        merged_dur = 0.0
        merged_rw: list[float] = []
        merged_rt: list[int] = []
        merged_local: tuple[int, ...] = ()
        merged_chain = -1
        override_targets: dict[int, tuple[int, ...]] = {}
        active = n
        indeg = list(self._indeg0_l)
        if merge is not None:
            members, group, gpu = merge
            rep = members[0]
            active = n - (len(members) - 1)
            rep_of = list(self._identity)
            for m in members:
                rep_of[m] = rep
            merged_dur = self._profile.stage_time(group, gpu=gpu)
            loc: set[int] = set()
            rem: list[tuple[float, int, str, str]] = []
            for m in members:
                loc.update(self._local[m])
                rem.extend(self._remote[m])
            rem.sort(key=lambda e: (e[2], e[3]))
            merged_rw = [e[0] for e in rem]
            merged_rt = [e[1] for e in rem]
            merged_local = tuple(loc)
            merged_chain = chain[members[-1]]
            # The group passed the pairwise-independence check, so no
            # edge runs between two members: every merged edge target
            # lies outside the window and needs no remap.
            affected: set[int] = set()
            for m in members:
                affected.update(self._rev_sources[m])
            affected.difference_update(members)
            mt = set(merged_local)
            mt.update(merged_rt)
            if merged_chain >= 0:
                mt.add(merged_chain)
            merged_targets = tuple(mt)
            override_targets[rep] = merged_targets
            # Incremental in-degrees: drop the members' committed
            # contributions, add the merged node's dedup'd target set,
            # and pin the representative's in-degree to the number of
            # outside sources with an edge into the window (remap can
            # collapse several member targets of one source into the
            # representative, which must then count once).  Skipped
            # members keep garbage in-degrees — they are never readied.
            for m in members:
                for i in range(sptr[m], sptr[m + 1]):
                    indeg[sdst[i]] -= 1
            for t in merged_targets:
                indeg[t] += 1
            indeg[rep] = len(affected)
            for s in affected:
                seen = {rep_of[sdst[i]] for i in range(sptr[s], sptr[s + 1])}
                override_targets[s] = tuple(seen)

        start = [0.0] * n
        # rep_of[s] == s keeps non-members and the representative,
        # excluding the contracted members (identity when not merging)
        ready = [s for s in range(n) if indeg[s] == 0 and rep_of[s] == s]
        done = 0
        latency = 0.0
        merging = merge is not None
        while ready:
            s = ready.pop()
            done += 1
            if s == rep:
                fin = start[s] + merged_dur
                if blocking:
                    cursor = fin
                    for i, w in enumerate(merged_rw):
                        cursor += w
                        t = merged_rt[i]
                        if cursor > start[t]:
                            start[t] = cursor
                    comm_done = cursor
                else:
                    for i, w in enumerate(merged_rw):
                        t = merged_rt[i]
                        cand = fin + w
                        if cand > start[t]:
                            start[t] = cand
                    comm_done = fin
                for t in merged_local:
                    if fin > start[t]:
                        start[t] = fin
                if merged_chain >= 0:
                    if comm_done > start[merged_chain]:
                        start[merged_chain] = comm_done
            else:
                fin = start[s] + dur[s]
                if blocking:
                    cursor = fin
                    for i in range(rptr[s], rptr[s + 1]):
                        cursor += rw[i]
                        t = rep_of[rdst[i]]
                        if cursor > start[t]:
                            start[t] = cursor
                    comm_done = cursor
                else:
                    for i in range(rptr[s], rptr[s + 1]):
                        t = rep_of[rdst[i]]
                        cand = fin + rw[i]
                        if cand > start[t]:
                            start[t] = cand
                    comm_done = fin
                for i in range(lptr[s], lptr[s + 1]):
                    t = rep_of[ldst[i]]
                    if fin > start[t]:
                        start[t] = fin
                c = chain[s]
                if c >= 0:
                    t = rep_of[c]
                    if comm_done > start[t]:
                        start[t] = comm_done
            if fin > latency:
                latency = fin
            if comm_done > latency:
                latency = comm_done
            # in-degree decrement over the per-source unique target set
            # (max-merges above already applied the start relaxations)
            if merging:
                tt = override_targets.get(s)
                if tt is not None:
                    for t in tt:
                        indeg[t] -= 1
                        if indeg[t] == 0:
                            ready.append(t)
                else:
                    for i in range(sptr[s], sptr[s + 1]):
                        t = sdst[i]
                        indeg[t] -= 1
                        if indeg[t] == 0:
                            ready.append(t)
            else:
                for i in range(sptr[s], sptr[s + 1]):
                    t = sdst[i]
                    indeg[t] -= 1
                    if indeg[t] == 0:
                        ready.append(t)
        if done != active:
            return None  # cyclic stage graph
        return latency

    # ------------------------------------------------------------------
    def stages_on(self, gpu: int) -> list[Stage]:
        """Committed stage list of one GPU (parallelize's sweep view)."""
        return [self._stages[i] for i in self._by_gpu.get(gpu, [])]


def soa_latency(
    profile: CostProfile,
    schedule: Schedule,
    validate: bool = False,
    counters: EvalCounters | None = None,
) -> float:
    """One-shot latency of ``schedule`` via the struct-of-arrays sweep.

    Bit-identical to
    ``evaluate_schedule(profile, schedule, validate).latency`` — the
    schedulers' final evaluations route here when ``fast=True`` and
    fall back to the reference under ``fast=False``.  Raises
    :class:`ScheduleError` on an infeasible schedule exactly like the
    reference.
    """
    if validate:
        schedule.validate(profile.graph)
    return StageGraphEvaluator(profile, schedule, counters=counters).evaluate()
