"""Schedule analysis: structural and load metrics for comparing
schedules beyond their latency.

The paper's discussion attributes HIOS-LP's advantage to *fewer
cross-GPU crossings* (whole paths co-located) and HIOS-MR's weakness to
"unnecessary communication"; these metrics make such statements
measurable on any schedule:

* crossings / communication volume / communication time;
* per-GPU computational load and balance;
* stage width distribution (how much Alg. 2 grouped);
* critical-path co-location (fraction of longest-path edges kept
  local).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..costmodel.profile import CostProfile
from .evaluator import evaluate_schedule
from .graph import OpGraph
from .priority import critical_path
from .schedule import Schedule

__all__ = ["ScheduleMetrics", "analyze_schedule"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Structural summary of one schedule against its graph."""

    num_operators: int
    num_gpus_used: int
    num_stages: int
    max_stage_width: int
    mean_stage_width: float
    num_cross_edges: int
    cross_edge_fraction: float
    comm_time_total: float  # sum of cross-edge transfer times (ms)
    comm_bytes_total: int
    gpu_load: dict[int, float]  # solo compute ms per used GPU
    load_imbalance: float  # max load / mean load (1.0 = perfect)
    critical_path_local_fraction: float  # longest-path edges kept on one GPU
    latency: float
    parallel_efficiency: float  # total work / (latency * gpus used)

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        return (
            f"{self.num_operators} ops on {self.num_gpus_used} GPU(s) in "
            f"{self.num_stages} stages (width <= {self.max_stage_width}); "
            f"{self.num_cross_edges} cross-GPU edges "
            f"({self.cross_edge_fraction:.0%} of edges, "
            f"{self.comm_time_total:.2f} ms of transfers); load imbalance "
            f"{self.load_imbalance:.2f}; critical path "
            f"{self.critical_path_local_fraction:.0%} co-located; latency "
            f"{self.latency:.3f} ms at {self.parallel_efficiency:.0%} "
            f"parallel efficiency"
        )


def analyze_schedule(profile: CostProfile, schedule: Schedule) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for a feasible schedule."""
    graph: OpGraph = profile.graph
    evaluation = evaluate_schedule(profile, schedule, validate=True)

    gpu_of = {op: schedule.gpu_of(op) for op in graph.names}
    cross = [
        (u, v, w) for u, v, w in graph.edges() if gpu_of[u] != gpu_of[v]
    ]
    num_edges = graph.num_edges
    comm_time = sum(w for _u, _v, w in cross)
    comm_bytes = sum(graph.operator(u).output_bytes for u, _v, _w in cross)

    used = schedule.used_gpus()
    load: dict[int, float] = {g: 0.0 for g in used}
    for op in graph.names:
        load[gpu_of[op]] += graph.cost(op)
    mean_load = sum(load.values()) / len(load) if load else 0.0
    imbalance = (max(load.values()) / mean_load) if mean_load > 0 else 1.0

    cp = critical_path(graph, include_transfers=True)
    cp_edges = list(zip(cp, cp[1:]))
    local_cp = sum(1 for u, v in cp_edges if gpu_of[u] == gpu_of[v])
    cp_local_fraction = local_cp / len(cp_edges) if cp_edges else 1.0

    stages = schedule.all_stages()
    widths = [len(st) for st in stages]
    total_work = graph.total_cost()
    efficiency = (
        total_work / (evaluation.latency * len(used))
        if evaluation.latency > 0 and used
        else 1.0
    )
    return ScheduleMetrics(
        num_operators=len(graph),
        num_gpus_used=len(used),
        num_stages=len(stages),
        max_stage_width=max(widths, default=0),
        mean_stage_width=(sum(widths) / len(widths)) if widths else 0.0,
        num_cross_edges=len(cross),
        cross_edge_fraction=(len(cross) / num_edges) if num_edges else 0.0,
        comm_time_total=comm_time,
        comm_bytes_total=comm_bytes,
        gpu_load=load,
        load_imbalance=imbalance,
        critical_path_local_fraction=cp_local_fraction,
        latency=evaluation.latency,
        parallel_efficiency=efficiency,
    )
