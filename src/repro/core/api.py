"""Top-level scheduling API and algorithm registry.

``schedule_graph`` is the one-call entry point: give it a graph (or a
ready-made :class:`~repro.costmodel.profile.CostProfile`), pick an
algorithm by name, get a :class:`~repro.core.result.ScheduleResult`.
The registry names match the paper's six comparison points:

========== ====================================================
name        algorithm
========== ====================================================
sequential  one GPU, one operator at a time (Section V-B)
ios         IOS single-GPU DP (Ding et al.)
hios-lp     Alg. 1 + Alg. 2 (the paper's main contribution)
hios-mr     Alg. 3 + Alg. 2
inter-lp    Alg. 1 only ("inter-GPU w/ LP")
inter-mr    Alg. 3 only ("inter-GPU w/ MR")
hios-lp-ls  extension: Alg. 1 + local search + Alg. 2
========== ====================================================
"""

from __future__ import annotations

from typing import Callable

from ..costmodel.concurrency import ConcurrencyModel
from ..costmodel.profile import CostProfile
from .graph import OpGraph
from .hios_lp import schedule_hios_lp, schedule_inter_gpu_lp
from .hios_mr import schedule_hios_mr, schedule_inter_gpu_mr
from .ios import schedule_ios
from .refine import schedule_hios_lp_ls
from .result import ScheduleResult
from .sequential import schedule_sequential

__all__ = ["ALGORITHMS", "SPATIAL_CACHE_ALGORITHMS", "schedule_graph", "make_profile"]

ALGORITHMS: dict[str, Callable[..., ScheduleResult]] = {
    "sequential": schedule_sequential,
    "ios": schedule_ios,
    "hios-lp": schedule_hios_lp,
    "hios-mr": schedule_hios_mr,
    "inter-lp": schedule_inter_gpu_lp,
    "inter-mr": schedule_inter_gpu_mr,
    # extension beyond the paper: Alg. 1 + operator-level local search
    "hios-lp-ls": schedule_hios_lp_ls,
}

#: Algorithms that accept a ``spatial_cache`` kwarg: their inter-GPU
#: mapping phase is window-independent and can be shared across calls
#: on the same profile (``cached_spatial_lp`` / ``cached_spatial_mr``).
SPATIAL_CACHE_ALGORITHMS = frozenset(
    {"hios-lp", "hios-mr", "inter-lp", "inter-mr", "hios-lp-ls"}
)


def make_profile(
    graph: OpGraph,
    num_gpus: int = 2,
    concurrency: ConcurrencyModel | None = None,
    max_streams: int = 0,
) -> CostProfile:
    """Build a :class:`CostProfile` with sensible defaults (saturation
    concurrency model, unbounded streams)."""
    if concurrency is None:
        return CostProfile(graph=graph, num_gpus=num_gpus, max_streams=max_streams)
    return CostProfile(
        graph=graph,
        num_gpus=num_gpus,
        max_streams=max_streams,
        concurrency=concurrency,
    )


def schedule_graph(
    graph: OpGraph | CostProfile,
    algorithm: str = "hios-lp",
    num_gpus: int = 2,
    concurrency: ConcurrencyModel | None = None,
    max_streams: int = 0,
    **kwargs: object,
) -> ScheduleResult:
    """Schedule ``graph`` with the named algorithm.

    Extra keyword arguments are forwarded to the algorithm (e.g.
    ``window=`` for the HIOS variants, ``mode=`` / ``beam_width=`` for
    IOS).  When a :class:`CostProfile` is passed, ``num_gpus``,
    ``concurrency`` and ``max_streams`` are ignored.
    """
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise ValueError(f"unknown algorithm {algorithm!r}; choose from: {known}") from None
    if isinstance(graph, CostProfile):
        profile = graph
    else:
        profile = make_profile(
            graph, num_gpus=num_gpus, concurrency=concurrency, max_streams=max_streams
        )
    return fn(profile, **kwargs)
