"""HIOS-MR — mapping-recording-based operator scheduling (Alg. 3).

Operators are mapped one at a time in descending priority order.  An
``n x M`` table records, for every (operator ``v_i``, GPU ``j``) pair,
the earliest finish time ``t_{i,j}`` achievable when ``v_i`` runs on
GPU ``j`` — together with ``g_{i,j}``, the GPU that ``v_{i-1}`` was
mapped to in the recorded schedule attaining that finish time.  Each
cell is filled by replaying the ``min(M, i-1)`` recorded schedules of
the previous operator (reconstructed by walking the ``g`` pointers) and
placing ``v_i`` at its earliest start under GPU-availability and
data-dependency constraints.  Backtracking from the best final cell
yields the spatial mapping; Alg. 2 then regroups within each GPU.

This is the paper's *local* greedy alternative to HIOS-LP: it never
reasons about whole paths, so it tends to split dependent chains across
GPUs and pay avoidable transfers — the behaviour Figs. 7-13 quantify.
"""

from __future__ import annotations

import time
from typing import Any, MutableMapping, cast

import numpy as np

from ..costmodel.profile import CostProfile
from .debuglint import debug_lint_schedule
from .evaluator import evaluate_latency
from .fasteval import EvalCounters, soa_latency
from .intra_gpu import parallelize
from .list_schedule import build_singleton_schedule
from .priority import priority_order
from .result import ScheduleResult

__all__ = ["cached_spatial_mr", "schedule_hios_mr", "schedule_inter_gpu_mr"]

_INF = float("inf")


def _mr_fill_reference(
    profile: CostProfile,
    order: list[str],
    index: dict[str, int],
    speeds: list[float],
    t_tab: list[list[float]],
    g_tab: list[list[int]],
) -> None:
    """Reference Alg. 3 fill: reconstruct every recorded schedule from
    scratch by walking the full ``g`` pointer chain per (i, k) cell."""
    graph = profile.graph
    M = profile.num_gpus
    n = len(order)
    for i in range(1, n):
        v = order[i]
        cost_v = graph.cost(v)
        preds = [u for u in graph.predecessors(v) if index[u] < i]
        # the min(M, i) symmetry pruning assumes interchangeable GPUs;
        # with heterogeneous speeds every GPU is distinct
        num_j = M if profile.heterogeneous else min(M, i + 1)
        num_k = M if profile.heterogeneous else min(M, i)
        for k in range(num_k):
            if t_tab[i - 1][k] == _INF:
                continue
            # Reconstruct the recorded schedule ending with v_{i-1} on
            # GPU k: finish time and GPU of every earlier operator.
            finish: dict[str, float] = {}
            gpu_of: dict[str, int] = {}
            free = [0.0] * M
            m = k
            for l in range(i - 1, -1, -1):
                u = order[l]
                fin = t_tab[l][m]
                finish[u] = fin
                gpu_of[u] = m
                if fin > free[m]:
                    free[m] = fin
                m = g_tab[l][m]
            for j in range(num_j):
                ready = free[j]
                for u in preds:
                    dep = finish[u]
                    if gpu_of[u] != j:
                        dep += graph.transfer(u, v)
                    if dep > ready:
                        ready = dep
                cand = ready + cost_v / speeds[j]
                if cand < t_tab[i][j]:
                    t_tab[i][j] = cand
                    g_tab[i][j] = k


def _mr_fill_fast(
    profile: CostProfile,
    order: list[str],
    index: dict[str, int],
    speeds: list[float],
    t_tab: list[list[float]],
    g_tab: list[list[int]],
) -> None:
    """Vectorized Alg. 3 fill, bit-identical to the reference.

    Each row is computed as one ``(k, j)`` numpy block instead of the
    reference's per-cell chain reconstruction: the per-GPU free arrays
    of all ``M`` recorded states ride along as an ``(M, M)`` matrix,
    the ``g``-pointer chain walk down to the deepest predecessor is a
    gather shared by every ``k`` at once, and the strict ``<`` update
    over ascending ``k`` collapses to a masked column ``min`` /
    first-occurrence ``argmin`` (a sequence of strict improvements
    lands on exactly the smallest ``k`` attaining the column minimum).
    Bit-identity holds because minima and maxima are selections and the
    per-cell arithmetic (``t + tr``, ``ready + cost/speed``) performs
    the reference's float operations; ``np.where`` keeps the
    ``mu == j`` branch free of any ``+ 0.0`` rewriting.  Rows of the
    free matrix belonging to unreachable states carry garbage — they
    are masked out by the validity mask exactly like the reference's
    ``None`` entries.
    """
    graph = profile.graph
    M = profile.num_gpus
    n = len(order)
    if n <= 1:
        return
    hetero = profile.heterogeneous
    T = np.full((n, M), _INF, dtype=np.float64)
    T[0] = t_tab[0]
    G = np.zeros((n, M), dtype=np.int64)
    speeds_arr = np.asarray(speeds, dtype=np.float64)
    js = np.arange(M)
    free = np.zeros((M, M), dtype=np.float64)  # free[k] = state (i-1, k)
    free[js, js] = np.maximum(free[js, js], T[0])
    for i in range(1, n):
        v = order[i]
        cost_div = graph.cost(v) / speeds_arr
        preds = [
            (index[u], graph.transfer(u, v))
            for u in graph.predecessors(v)
            if index[u] < i
        ]
        num_j = M if hetero else min(M, i + 1)
        num_k = M if hetero else min(M, i)
        valid_k = T[i - 1, :num_k] < _INF
        # chain GPUs of the predecessors, for every k in one walk
        chain: dict[int, np.ndarray] = {}
        if preds:
            pred_pos = {l for l, _tr in preds}
            m_vec = np.arange(M)
            for l in range(i - 1, min(pred_pos) - 1, -1):
                if l in pred_pos:
                    chain[l] = m_vec
                m_vec = G[l][m_vec]
        ready = free.copy()
        for l, tr in preds:
            mu = chain[l]
            base = T[l, mu][:, None]
            dep = np.where(mu[:, None] != js[None, :], base + tr, base)
            ready = np.maximum(ready, dep)
        cand = ready[:num_k] + cost_div[None, :]
        cand = np.where(valid_k[:, None], cand, _INF)
        vals = cand.min(axis=0)
        ks = cand.argmin(axis=0)  # first occurrence == smallest winning k
        T[i, :num_j] = vals[:num_j]
        G[i, :num_j] = ks[:num_j]
        free = free[G[i]]
        free[js, js] = np.maximum(free[js, js], T[i])
    for i in range(1, n):
        t_tab[i][:] = T[i].tolist()
        g_tab[i][:] = G[i].tolist()


def _mr_spatial_mapping(
    profile: CostProfile, fast: bool = True
) -> tuple[dict[str, int], list[str]]:
    """Fill the (t, g) table and backtrack the operator-to-GPU mapping."""
    graph = profile.graph
    M = profile.num_gpus
    order = priority_order(graph)
    n = len(order)
    if n == 0:
        return {}, order
    index = {v: i for i, v in enumerate(order)}

    speeds = [profile.gpu_speed(j) for j in range(M)]
    t_tab = [[_INF] * M for _ in range(n)]
    g_tab = [[0] * M for _ in range(n)]
    if profile.heterogeneous:
        # extension: with mixed speeds v_1's GPU matters; seed every column
        for j in range(M):
            t_tab[0][j] = graph.cost(order[0]) / speeds[j]
        # g pointers of row 0 are unused (backtracking stops there)
    else:
        t_tab[0][0] = graph.cost(order[0])  # v_1 on GPU 1 (homogeneity)

    if fast:
        _mr_fill_fast(profile, order, index, speeds, t_tab, g_tab)
    else:
        _mr_fill_reference(profile, order, index, speeds, t_tab, g_tab)

    best_j = min(range(M), key=lambda j: t_tab[n - 1][j])
    assignment: dict[str, int] = {}
    m = best_j
    for i in range(n - 1, -1, -1):
        assignment[order[i]] = m
        m = g_tab[i][m]
    return assignment, order


def cached_spatial_mr(
    profile: CostProfile,
    fast: bool = True,
    spatial_cache: MutableMapping[str, Any] | None = None,
) -> tuple[dict[str, int], list[str]]:
    """MR spatial mapping, optionally served from a per-workload cache.

    The MR table fill depends only on the profile, so one computation
    serves ``hios-mr`` at every window and ``inter-mr`` alike — the
    same sharing seam as :func:`repro.core.hios_lp.cached_spatial_lp`.
    Stores and hands out copies; hits are bit-identical to fresh runs.
    """
    if spatial_cache is not None:
        hit = spatial_cache.get("mr")
        if hit is not None:
            assignment, order = cast("tuple[dict[str, int], list[str]]", hit)
            return dict(assignment), list(order)
    assignment, order = _mr_spatial_mapping(profile, fast=fast)
    if spatial_cache is not None:
        spatial_cache["mr"] = (dict(assignment), list(order))
    return assignment, order


def schedule_hios_mr(
    profile: CostProfile,
    window: int = 3,
    intra_gpu: bool = True,
    fast: bool = True,
    spatial_cache: MutableMapping[str, Any] | None = None,
) -> ScheduleResult:
    """Full HIOS-MR: MR-based inter-GPU mapping + Alg. 2 regrouping.

    Set ``intra_gpu=False`` for the paper's "inter-GPU w/ MR" ablation.
    ``fast=False`` runs the retained reference table fill and window
    evaluation (bit-identical results).  ``spatial_cache`` shares the
    window-independent mapping phase across calls on the same profile.
    """
    t0 = time.perf_counter()
    cache_hits0 = profile.stage_time_cache_hits
    counters = EvalCounters()
    assignment, order = cached_spatial_mr(
        profile, fast=fast, spatial_cache=spatial_cache
    )
    t_spatial = time.perf_counter() - t0
    schedule = build_singleton_schedule(assignment, order, profile.num_gpus)
    latency = (
        soa_latency(profile, schedule, validate=True, counters=counters)
        if fast
        else evaluate_latency(profile, schedule, validate=True)
    )
    stats: dict[str, object] = {"inter_gpu_latency": latency}
    phase_times: dict[str, float] = {"spatial_mapping": t_spatial}

    if intra_gpu:
        t1 = time.perf_counter()
        schedule, latency, intra_stats = parallelize(
            profile,
            schedule,
            window=window,
            priority=order,
            validate=False,  # singleton schedule was validated just above
            fast=fast,
            counters=counters,
        )
        phase_times["intra_gpu"] = time.perf_counter() - t1
        stats["intra_gpu"] = intra_stats

    counters.cache_hits = profile.stage_time_cache_hits - cache_hits0
    stats.update(counters.to_stats())
    stats["phase_times"] = phase_times

    algorithm = "hios-mr" if intra_gpu else "inter-mr"
    debug_lint_schedule(
        profile.graph,
        schedule,
        algorithm=algorithm,
        window=window if intra_gpu else None,
    )
    return ScheduleResult(
        algorithm=algorithm,
        schedule=schedule,
        latency=latency,
        scheduling_time=time.perf_counter() - t0,
        stats=stats,
    )


def schedule_inter_gpu_mr(
    profile: CostProfile,
    fast: bool = True,
    spatial_cache: MutableMapping[str, Any] | None = None,
) -> ScheduleResult:
    """The "inter-GPU w/ MR" comparison point (no Alg. 2 pass)."""
    return schedule_hios_mr(
        profile, intra_gpu=False, fast=fast, spatial_cache=spatial_cache
    )
