"""Schedule representation of Section III-A.

A schedule ``Q = {Q_i | 1 <= i <= M}`` assigns every operator to exactly
one GPU and partitions each GPU's operators into an ordered list of
*stages*.  Operators within a stage run concurrently (one CUDA stream
each); stages on a GPU run sequentially.  The paper's reference
implementation emits schedules as JSON consumed by its cuDNN/MPI engine;
we keep the same JSON contract so :mod:`repro.substrate.engine` can
execute any schedule produced here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .graph import OpGraph

__all__ = ["ScheduleError", "Stage", "Schedule"]


class ScheduleError(ValueError):
    """Raised for malformed or infeasible schedules."""


@dataclass(frozen=True)
class Stage:
    """One stage ``S_{i,j}``: a set of operators that start together on
    GPU ``gpu``.  Operator order inside a stage is irrelevant for timing
    but kept stable for reproducible JSON output."""

    gpu: int
    ops: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise ScheduleError(f"negative GPU index {self.gpu}")
        if not self.ops:
            raise ScheduleError("empty stage")
        if len(set(self.ops)) != len(self.ops):
            raise ScheduleError(f"stage contains duplicate operators: {self.ops}")

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[str]:
        return iter(self.ops)

    def __contains__(self, name: str) -> bool:
        return name in self.ops


class Schedule:
    """A complete schedule ``Q`` over at most ``num_gpus`` GPUs."""

    def __init__(self, num_gpus: int, stages: Iterable[Stage] = ()) -> None:
        if num_gpus < 1:
            raise ScheduleError(f"need at least one GPU, got {num_gpus}")
        self.num_gpus = num_gpus
        self._per_gpu: list[list[Stage]] = [[] for _ in range(num_gpus)]
        self._placement: dict[str, tuple[int, int]] = {}  # op -> (gpu, stage idx)
        for st in stages:
            self.append_stage(st)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append_stage(self, stage: Stage) -> None:
        """Append ``stage`` after the existing stages of its GPU."""
        if stage.gpu >= self.num_gpus:
            raise ScheduleError(
                f"stage on GPU {stage.gpu} but schedule has {self.num_gpus} GPUs"
            )
        idx = len(self._per_gpu[stage.gpu])
        for op in stage.ops:
            if op in self._placement:
                raise ScheduleError(f"operator {op!r} scheduled twice")
            self._placement[op] = (stage.gpu, idx)
        self._per_gpu[stage.gpu].append(stage)

    def append_op(self, gpu: int, op: str) -> None:
        """Convenience: append a singleton stage holding ``op``."""
        self.append_stage(Stage(gpu, (op,)))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stages_on(self, gpu: int) -> list[Stage]:
        """The ordered stage list ``Q_i`` of one GPU."""
        if not (0 <= gpu < self.num_gpus):
            raise ScheduleError(f"GPU index {gpu} out of range")
        return list(self._per_gpu[gpu])

    def all_stages(self) -> list[Stage]:
        """Every stage, grouped by GPU then stage order."""
        return [st for q in self._per_gpu for st in q]

    def gpu_of(self, op: str) -> int:
        """The GPU an operator is mapped to."""
        try:
            return self._placement[op][0]
        except KeyError:
            raise ScheduleError(f"operator {op!r} not scheduled") from None

    def stage_index_of(self, op: str) -> int:
        """Position of the operator's stage within its GPU's stage list."""
        try:
            return self._placement[op][1]
        except KeyError:
            raise ScheduleError(f"operator {op!r} not scheduled") from None

    def stage_of(self, op: str) -> Stage:
        gpu, idx = self._placement[op]
        return self._per_gpu[gpu][idx]

    def __contains__(self, op: str) -> bool:
        return op in self._placement

    def operators(self) -> list[str]:
        return list(self._placement)

    @property
    def num_stages(self) -> int:
        return sum(len(q) for q in self._per_gpu)

    def used_gpus(self) -> list[int]:
        """Indices of GPUs with at least one stage."""
        return [i for i, q in enumerate(self._per_gpu) if q]

    def gpu_order(self, gpu: int) -> list[str]:
        """Operators of one GPU flattened in stage order (the execution
        order Alg. 2 must preserve when regrouping)."""
        return [op for st in self._per_gpu[gpu] for op in st.ops]

    def max_stage_width(self) -> int:
        return max((len(st) for st in self.all_stages()), default=0)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, graph: OpGraph) -> None:
        """Check the schedule is feasible for ``graph``:

        * every graph operator appears exactly once;
        * operators within a stage are pairwise independent;
        * intra-GPU stage order respects operator dependencies;
        * the *stage graph* (stages as vertices, dependencies induced by
          operator edges plus per-GPU sequencing) is acyclic, i.e. a
          legal execution order exists.

        A thin wrapper over the error-severity ``repro.lint`` schedule
        rules (S001/S002/S006/S007/S008) that raises
        :class:`ScheduleError` listing *every* violation.  Use
        :func:`repro.lint.lint_schedule` directly to also collect the
        warning/info findings.
        """
        from ..lint.framework import LintContext, Linter

        ctx = LintContext(graph=graph, schedule=self)
        Linter.errors_only().for_packs("schedule").run(ctx).raise_errors(
            ScheduleError
        )

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def copy(self) -> "Schedule":
        return Schedule(self.num_gpus, self.all_stages())

    def with_stages_on_gpu(self, gpu: int, stages: Sequence[Stage]) -> "Schedule":
        """Return a copy where GPU ``gpu``'s stage list is replaced."""
        out = Schedule(self.num_gpus)
        for i in range(self.num_gpus):
            source = stages if i == gpu else self._per_gpu[i]
            for st in source:
                if st.gpu != i:
                    raise ScheduleError(
                        f"stage for GPU {st.gpu} placed in GPU {i}'s list"
                    )
                out.append_stage(st)
        return out

    # ------------------------------------------------------------------
    # JSON contract (matches the paper's scheduler -> engine hand-off)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "num_gpus": self.num_gpus,
            "gpus": [
                {"gpu": i, "stages": [list(st.ops) for st in q]}
                for i, q in enumerate(self._per_gpu)
            ],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Schedule":
        """Build a schedule from its JSON document form.

        The document is linted first (rules S003/S004/S005): duplicate
        or overlapping placements, invalid GPU counts/indices and
        malformed stage lists raise :class:`ScheduleError` naming every
        problem, instead of whichever ``KeyError`` construction happens
        to hit first.
        """
        from ..lint.framework import LintContext, Linter

        ctx = LintContext(schedule_doc=data)
        Linter.errors_only().run(ctx).raise_errors(
            ScheduleError, prefix="malformed schedule document: "
        )
        try:
            sched = cls(int(data["num_gpus"]))
            for entry in data["gpus"]:
                gpu = int(entry["gpu"])
                for ops in entry["stages"]:
                    sched.append_stage(Stage(gpu, tuple(ops)))
        except (KeyError, TypeError) as exc:  # pragma: no cover - lint catches
            raise ScheduleError(f"malformed schedule document: {exc}") from exc
        return sched

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.num_gpus == other.num_gpus and self._per_gpu == other._per_gpu

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        used = self.used_gpus()
        return (
            f"Schedule(gpus={self.num_gpus}, used={len(used)}, "
            f"stages={self.num_stages}, ops={len(self._placement)})"
        )
