"""IOS baseline — single-GPU inter-operator scheduling by dynamic
programming (Ding et al., MLSys'21), the paper's state-of-the-art
comparison point.

IOS partitions the graph into a sequence of stages on *one* GPU.  The
DP runs over *downsets* (predecessor-closed vertex subsets): from each
reached downset ``S`` it appends a stage ``T`` drawn from the ready set
of ``S`` (operators whose predecessors are all in ``S``; any subset of
the ready set is automatically an antichain) and relaxes
``dp[S ∪ T] = min(dp[S ∪ T], dp[S] + t(T))``.

The exact DP is exponential; IOS itself ships pruning knobs, and we
expose the same levers:

* ``max_stage_ops`` bounds the stage width (IOS's group-size pruning);
* ``max_enum`` restricts multi-operator stage enumeration to the
  highest-priority ready operators;
* ``beam_width`` keeps only the best states per downset size once the
  state count explodes (``mode="beam"``); ``mode="exact"`` disables
  beam pruning and is provably optimal, which the tests verify against
  brute force on small graphs; ``mode="auto"`` starts exact and falls
  back to beam search when ``state_limit`` is exceeded.

Downsets are represented as integer bitmasks over a fixed operator
ordering, keeping set algebra O(words) rather than O(elements) — the
vectorization-over-objects advice of the HPC guides applied to DP
states.
"""

from __future__ import annotations

import time
from itertools import combinations

from ..costmodel.profile import CostProfile
from .debuglint import debug_lint_schedule
from .evaluator import evaluate_latency
from .fasteval import soa_latency
from .priority import priority_indicators
from .result import ScheduleResult
from .schedule import Schedule, Stage

__all__ = ["schedule_ios"]

_INF = float("inf")


def schedule_ios(
    profile: CostProfile,
    gpu: int = 0,
    max_stage_ops: int = 4,
    max_enum: int = 10,
    mode: str = "auto",
    beam_width: int = 4,
    state_limit: int = 20000,
    fast: bool = True,
) -> ScheduleResult:
    """Run the IOS DP on a single GPU and return the best stage sequence.

    Parameters mirror IOS's pruning configuration; see the module
    docstring.  The returned schedule places every stage on ``gpu``.
    ``fast=False`` disables the per-run stage price memo and queries
    the profile for every candidate, as the pre-engine code did
    (identical prices either way).
    """
    if mode not in ("exact", "beam", "auto"):
        raise ValueError(f"unknown mode {mode!r}")
    if max_stage_ops < 1 or max_enum < 1 or beam_width < 1:
        raise ValueError("pruning parameters must be positive")
    t0 = time.perf_counter()
    graph = profile.graph
    if not (0 <= gpu < profile.num_gpus):
        raise ValueError(f"GPU index {gpu} out of range for {profile.num_gpus} GPUs")

    # Order operators by descending priority; higher-priority ops get
    # lower bit indices so candidate pools are cheap prefix slices.
    prio = priority_indicators(graph)
    names = sorted(graph.names, key=lambda v: (-prio[v], v))
    n = len(names)
    bit_of = {v: i for i, v in enumerate(names)}
    pred_mask = [0] * n
    for v in names:
        m = 0
        for u in graph.predecessors(v):
            m |= 1 << bit_of[u]
        pred_mask[bit_of[v]] = m

    width_cap = max_stage_ops
    if profile.max_streams:
        width_cap = min(width_cap, profile.max_streams)

    # dp state: bitmask of executed operators -> (latency, parent mask,
    # stage bit tuple).  Organized by popcount so beam pruning operates
    # level by level.
    best: dict[int, tuple[float, int, tuple[int, ...]]] = {0: (0.0, -1, ())}
    by_size: list[list[int]] = [[] for _ in range(n + 1)]
    by_size[0].append(0)
    beam_active = mode == "beam"
    states_created = 1
    full = (1 << n) - 1 if n else 0

    stage_time = profile.stage_time
    cache_hits0 = profile.stage_time_cache_hits
    # per-run stage price memo keyed on bit tuples: skips even the
    # name-tuple construction on the (dominant) repeated queries
    stage_cost: dict[tuple[int, ...], float] = {}

    for size in range(n):
        level = by_size[size]
        if not level:
            continue
        if beam_active and len(level) > beam_width:
            level = sorted(level, key=lambda s: best[s][0])[:beam_width]
        for state in level:
            lat = best[state][0]
            ready = [
                i
                for i in range(n)
                if not (state >> i) & 1 and (pred_mask[i] & ~state) == 0
            ]
            if not ready:
                continue
            pool = ready[:max_enum]  # ready is already priority-sorted
            cands: list[tuple[int, ...]] = [(i,) for i in ready]
            for s in range(2, min(width_cap, len(pool)) + 1):
                cands.extend(combinations(pool, s))
            for stage_bits in cands:
                mask = 0
                for i in stage_bits:
                    mask |= 1 << i
                new_state = state | mask
                if fast:
                    t_stage = stage_cost.get(stage_bits)
                    if t_stage is None:
                        t_stage = stage_time(tuple(names[i] for i in stage_bits))
                        stage_cost[stage_bits] = t_stage
                else:
                    t_stage = stage_time([names[i] for i in stage_bits])
                cand = lat + t_stage
                prev = best.get(new_state)
                if prev is None:
                    best[new_state] = (cand, state, stage_bits)
                    by_size[size + len(stage_bits)].append(new_state)
                    states_created += 1
                    if (
                        mode == "auto"
                        and not beam_active
                        and states_created > state_limit
                    ):
                        beam_active = True
                elif cand < prev[0]:
                    best[new_state] = (cand, state, stage_bits)

    if full not in best:
        raise RuntimeError("IOS DP failed to reach the full downset")

    # Backtrack the stage sequence.
    stages_rev: list[tuple[str, ...]] = []
    cursor = full
    while cursor:
        _, parent, stage_bits = best[cursor]
        stages_rev.append(tuple(names[i] for i in stage_bits))
        cursor = parent

    schedule = Schedule(profile.num_gpus)
    for stage_ops in reversed(stages_rev):
        schedule.append_stage(Stage(gpu, stage_ops))
    latency = (
        soa_latency(profile, schedule, validate=True)
        if fast
        else evaluate_latency(profile, schedule, validate=True)
    )
    debug_lint_schedule(profile.graph, schedule, algorithm="ios", window=width_cap)
    return ScheduleResult(
        algorithm="ios",
        schedule=schedule,
        latency=latency,
        scheduling_time=time.perf_counter() - t0,
        stats={
            "dp_states": states_created,
            "beam_used": beam_active,
            "num_stages": len(stages_rev),
            "cache_hits": profile.stage_time_cache_hits - cache_hits0,
        },
    )
