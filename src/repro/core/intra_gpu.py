"""Intra-GPU inter-operator parallelization — Alg. 2 (``parallelize``).

Slide a window along each GPU's execution order in descending priority
order.  For every window size ``2 <= p+1 <= w`` the windowed operators
are tentatively grouped into one stage (one CUDA stream each); the
grouping is kept when

* the operators are pairwise independent,
* merging them into a single vertex keeps the stage graph acyclic
  (implicit cross-GPU dependencies, Section IV-B), and
* rescheduling every stage at its earliest start — without changing
  per-GPU execution order — strictly lowers the end-to-end latency.

The stage duration of a group comes from the profile's concurrency
model ``t(S)``, which is where under-utilization (small operators gain)
versus contention (saturating operators lose) enters the decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..costmodel.profile import CostProfile
from ..obs import declog
from .evaluator import evaluate_latency
from .fasteval import EvalCounters, StageGraphEvaluator
from .schedule import Schedule, ScheduleError, Stage

__all__ = ["IntraGpuStats", "parallelize"]


@dataclass
class IntraGpuStats:
    """Counters for one ``parallelize`` run."""

    windows_tried: int = 0
    groups_formed: int = 0
    rejected_dependent: int = 0
    rejected_cyclic: int = 0
    rejected_slower: int = 0


def parallelize(
    profile: CostProfile,
    schedule: Schedule,
    window: int = 3,
    priority: list[str] | None = None,
    validate: bool = True,
    fast: bool = True,
    counters: EvalCounters | None = None,
) -> tuple[Schedule, float, IntraGpuStats]:
    """Run Alg. 2 on ``schedule`` and return (schedule', latency, stats).

    ``window`` is the preset maximum window size ``w`` (the paper's
    walked example uses ``w = 2``; the default 3 matches the moderate
    stage widths profiled feasible on one GPU).  ``priority`` overrides
    the traversal order (descending priority indicators by default).

    ``validate=False`` skips the entry validation — for internal
    callers that just built and validated the schedule themselves (the
    ``HIOS_DEBUG_LINT=1`` self-check still lints the final schedule).
    ``fast=False`` prices every window candidate with the reference
    :func:`~repro.core.evaluator.evaluate_latency` rebuild instead of
    the :class:`~repro.core.fasteval.StageGraphEvaluator` merge delta;
    both produce bit-identical schedules and latencies.
    """
    if window < 1:
        raise ValueError("window size must be >= 1")
    from .priority import priority_order  # local import avoids cycle at module load

    graph = profile.graph
    if validate:
        schedule.validate(graph)
    order = priority if priority is not None else priority_order(graph)
    stats = IntraGpuStats()
    log = declog.active()
    evaluator: StageGraphEvaluator | None = None
    if fast:
        evaluator = StageGraphEvaluator(profile, schedule, counters=counters)
        best_latency = evaluator.evaluate()
    else:
        best_latency = evaluate_latency(profile, schedule)

    # The paper iterates i = 1 .. n-1: under HIOS's own schedules the
    # last-priority operator is last on its GPU and heads no window.
    # We iterate over every operator so externally supplied schedules
    # (whose per-GPU order may differ from priority order) are swept
    # fully; the extra iteration is a no-op in the HIOS case.
    for v in order:
        if v not in schedule:
            raise ScheduleError(f"operator {v!r} missing from schedule")
        gpu = schedule.gpu_of(v)
        stages = schedule.stages_on(gpu)
        pos = schedule.stage_index_of(v)
        if len(stages[pos]) > 1:
            continue  # already grouped in an earlier window

        # Collect the operators following v on this GPU while their
        # stages are still singletons — the sliding window may only
        # extend over ungrouped operators.
        followers: list[str] = []
        for st in stages[pos + 1 :]:
            if len(st) > 1:
                break
            followers.append(st.ops[0])
            if len(followers) >= window - 1:
                break

        best_candidate: tuple[float, int] | None = None
        for p in range(1, window):
            if p > len(followers):
                break
            group = (v, *followers[:p])
            if profile.max_streams and len(group) > profile.max_streams:
                break
            stats.windows_tried += 1
            if not graph.independent(group):
                stats.rejected_dependent += 1
                if log is not None:
                    log.emit(
                        "window", gpu=gpu, ops=list(group),
                        outcome="rejected-dependent",
                    )
                continue
            if evaluator is not None:
                maybe = evaluator.try_merge(gpu, pos, p, group)
                if maybe is None:
                    stats.rejected_cyclic += 1
                    if log is not None:
                        log.emit(
                            "window", gpu=gpu, ops=list(group),
                            outcome="rejected-cyclic",
                        )
                    continue
                lat = maybe
            else:
                merged = stages[:pos] + [Stage(gpu, group)] + stages[pos + 1 + p :]
                candidate = schedule.with_stages_on_gpu(gpu, merged)
                try:
                    lat = evaluate_latency(profile, candidate)
                except ScheduleError:
                    stats.rejected_cyclic += 1
                    if log is not None:
                        log.emit(
                            "window", gpu=gpu, ops=list(group),
                            outcome="rejected-cyclic",
                        )
                    continue
            if lat < best_latency and (
                best_candidate is None or lat < best_candidate[0]
            ):
                best_candidate = (lat, p)
                if log is not None:
                    log.emit(
                        "window", gpu=gpu, ops=list(group), outcome="improves",
                        latency_ms=lat, best_latency_ms=best_latency,
                    )
            elif lat >= best_latency:
                stats.rejected_slower += 1
                if log is not None:
                    log.emit(
                        "window", gpu=gpu, ops=list(group),
                        outcome="rejected-slower",
                        latency_ms=lat, best_latency_ms=best_latency,
                    )

        if best_candidate is not None:
            best_latency, best_p = best_candidate
            group = (v, *followers[:best_p])
            merged = stages[:pos] + [Stage(gpu, group)] + stages[pos + 1 + best_p :]
            schedule = schedule.with_stages_on_gpu(gpu, merged)
            stats.groups_formed += 1
            if log is not None:
                log.emit(
                    "window-merge", gpu=gpu, ops=list(group),
                    outcome="accepted", latency_ms=best_latency,
                )
            if evaluator is not None:
                # committed structure changed: rebuild once per accepted
                # group (rare relative to windows tried)
                evaluator = StageGraphEvaluator(profile, schedule, counters=counters)

    return schedule, best_latency, stats
