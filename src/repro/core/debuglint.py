"""Opt-in self-checking of freshly emitted schedules.

Set ``HIOS_DEBUG_LINT=1`` (any value other than ``0``/``""``/``false``/
``off``) and every scheduler — ``sequential``, ``ios``, ``hios_lp``,
``hios_mr``, the refinement pass and the degraded-mode repair path —
lints each schedule it is about to return and raises
:class:`~repro.core.schedule.ScheduleError` if any error-severity rule
fires.  The test suite enables it globally (``tests/conftest.py``), so
every schedule any test produces is verified for free; production runs
pay nothing beyond one environment lookup.
"""

from __future__ import annotations

import os

from .graph import OpGraph
from .schedule import Schedule, ScheduleError

__all__ = ["debug_lint_enabled", "debug_lint_schedule"]

_ENV_VAR = "HIOS_DEBUG_LINT"
_FALSY = {"", "0", "false", "off", "no"}


def debug_lint_enabled() -> bool:
    """True when ``HIOS_DEBUG_LINT`` is set to a truthy value."""
    return os.environ.get(_ENV_VAR, "").strip().lower() not in _FALSY


def debug_lint_schedule(
    graph: OpGraph,
    schedule: Schedule,
    *,
    algorithm: str = "",
    window: int | None = None,
) -> None:
    """Lint ``schedule`` against ``graph`` if the debug hook is enabled.

    Raises :class:`ScheduleError` naming the emitting algorithm and
    every error-severity finding.  A no-op (one ``os.environ`` lookup)
    when ``HIOS_DEBUG_LINT`` is unset.
    """
    if not debug_lint_enabled():
        return
    from ..lint.api import lint_schedule  # runtime import: lint imports core

    report = lint_schedule(graph, schedule, window=window, errors_only=True)
    who = algorithm or "scheduler"
    report.raise_errors(ScheduleError, prefix=f"debug lint [{who}]: ")
