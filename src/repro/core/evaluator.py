"""Schedule latency evaluation (the Section III-A timing semantics).

Stages on one GPU execute sequentially; a stage may start only when

* the previous stage of the same GPU has finished (including, under
  the default sender-blocking communication model, the serialized
  outgoing transfers of that stage — the MPI process issues blocking
  sends between kernel launches), and
* for every edge ``(u, v)`` with ``v`` in the stage, the stage holding
  ``u`` has finished — plus the transfer completion time when ``u``
  and ``v`` live on different GPUs (the precedence constraint of
  Section III-B).

The stage duration is ``t(S)`` from the cost profile's concurrency
model.  The end-to-end latency is the maximum completion time (stage
finishes and, under sender blocking, trailing sends).  This evaluator
is the analytic objective the schedulers optimize; the discrete-event
engine in :mod:`repro.substrate.engine` provides the "real system"
measurement with launch overheads and eager starts.

:func:`evaluate_schedule` is the *reference* (full-reconstruction)
implementation; Alg. 2's window sweep defaults to the bit-identical
delta version in :class:`repro.core.fasteval.StageGraphEvaluator`,
which builds the stage graph once per schedule and contracts merged
stages onto a representative node per candidate.  The differential
tests in ``tests/core/test_fasteval.py`` hold the two to exact float
equality — any change to the timing semantics here must be mirrored
there.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..costmodel.profile import CostProfile
from .graph import OpGraph
from .schedule import Schedule, ScheduleError, Stage

__all__ = ["StageTiming", "EvaluationResult", "evaluate_schedule", "evaluate_latency"]


@dataclass(frozen=True)
class StageTiming:
    """Timing of one stage in an evaluated schedule."""

    stage: Stage
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class EvaluationResult:
    """Full timing of a schedule.

    ``latency`` is the makespan (including trailing sends under the
    sender-blocking model); ``stage_timings`` are ordered GPU by GPU,
    stage by stage; ``op_start`` maps each operator to its stage start
    time (all operators of a stage share a start time by the stage
    execution model).
    """

    latency: float
    stage_timings: tuple[StageTiming, ...]
    op_start: dict[str, float]
    op_finish: dict[str, float]

    def gpu_finish(self, gpu: int) -> float:
        """Finish time of the last stage on one GPU (0.0 when idle)."""
        return max(
            (t.finish for t in self.stage_timings if t.stage.gpu == gpu), default=0.0
        )


def evaluate_schedule(
    profile: CostProfile, schedule: Schedule, validate: bool = True
) -> EvaluationResult:
    """Compute stage start/finish times and the end-to-end latency.

    Raises :class:`~repro.core.schedule.ScheduleError` when the schedule
    is infeasible (missing operators, dependent operators sharing a
    stage, or a cyclic stage graph).
    """
    graph: OpGraph = profile.graph
    if validate:
        schedule.validate(graph)
    blocking = profile.send_blocking

    stages = schedule.all_stages()
    n = len(stages)
    op_stage: dict[str, int] = {}
    for idx, st in enumerate(stages):
        for op in st.ops:
            op_stage[op] = idx

    # Per stage: chain successor (next stage on the same GPU), local
    # data successors (gap 0), and remote data edges with their
    # transfer times.  Remote edges are ordered deterministically —
    # the order the sender's MPI process issues its blocking sends.
    chain_next: list[int | None] = [None] * n
    indices_by_gpu: dict[int, list[int]] = {}
    for idx, st in enumerate(stages):
        indices_by_gpu.setdefault(st.gpu, []).append(idx)
    for chain in indices_by_gpu.values():
        for a, b in zip(chain, chain[1:]):
            chain_next[a] = b
    local_succ: list[set[int]] = [set() for _ in range(n)]
    remote_edges: list[list[tuple[float, int, str, str]]] = [[] for _ in range(n)]
    for u, v, w in graph.edges():
        su, sv = op_stage[u], op_stage[v]
        if su == sv:
            raise ScheduleError(f"dependent operators {u!r} -> {v!r} share a stage")
        if stages[su].gpu == stages[sv].gpu:
            local_succ[su].add(sv)
        else:
            remote_edges[su].append((w, sv, u, v))
    for lst in remote_edges:
        # deterministic send order: producer then consumer name — the
        # same order the list scheduler issues blocking sends in
        lst.sort(key=lambda e: (e[2], e[3]))

    # in-degrees over all constraint kinds
    indeg = [0] * n
    for s in range(n):
        targets = set(local_succ[s])
        targets.update(sv for _, sv, _, _ in remote_edges[s])
        if chain_next[s] is not None:
            targets.add(chain_next[s])
        for t in targets:
            indeg[t] += 1
    succ_sets = [
        set(local_succ[s])
        | {sv for _, sv, _, _ in remote_edges[s]}
        | ({chain_next[s]} if chain_next[s] is not None else set())
        for s in range(n)
    ]

    duration = [profile.stage_time(st.ops, gpu=st.gpu) for st in stages]
    start = [0.0] * n
    finish = [0.0] * n
    ready = [i for i, d in enumerate(indeg) if d == 0]
    done = 0
    latency = 0.0
    while ready:
        s = ready.pop()
        done += 1
        fin = start[s] + duration[s]
        finish[s] = fin
        relax: dict[int, float] = {}
        if blocking:
            cursor = fin
            for w, sv, _u, _v in remote_edges[s]:
                cursor += w
                relax[sv] = max(relax.get(sv, 0.0), cursor)
            comm_done = cursor
        else:
            for w, sv, _u, _v in remote_edges[s]:
                relax[sv] = max(relax.get(sv, 0.0), fin + w)
            comm_done = fin
        for sv in local_succ[s]:
            relax[sv] = max(relax.get(sv, 0.0), fin)
        nxt = chain_next[s]
        if nxt is not None:
            relax[nxt] = max(relax.get(nxt, 0.0), comm_done)
        latency = max(latency, fin, comm_done)
        for t in succ_sets[s]:
            gap_start = relax.get(t, 0.0)
            if gap_start > start[t]:
                start[t] = gap_start
            indeg[t] -= 1
            if indeg[t] == 0:
                ready.append(t)
    if done != n:
        raise ScheduleError("stage graph contains a cycle")

    timings = tuple(
        StageTiming(stage=st, start=start[i], finish=finish[i])
        for i, st in enumerate(stages)
    )
    op_start = {op: start[i] for i, st in enumerate(stages) for op in st.ops}
    op_finish = {op: finish[i] for i, st in enumerate(stages) for op in st.ops}
    return EvaluationResult(
        latency=latency, stage_timings=timings, op_start=op_start, op_finish=op_finish
    )


def evaluate_latency(
    profile: CostProfile, schedule: Schedule, validate: bool = False
) -> float:
    """Latency-only fast path used inside scheduler inner loops."""
    return evaluate_schedule(profile, schedule, validate=validate).latency
