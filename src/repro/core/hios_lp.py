"""HIOS-LP — longest-path-based operator scheduling (Alg. 1).

The spatial mapping iterates: extract the longest *valid* path from
the unscheduled subgraph (see :mod:`repro.core.longest_path`), then try
mapping the entire path onto each of the ``M`` GPUs, keeping the GPU
that minimizes the latency of list-scheduling everything mapped so far
(temporal step, :mod:`repro.core.list_schedule`).  Mapping a whole path
at once removes every transfer along it — the global optimization that
distinguishes HIOS-LP from the operator-at-a-time HIOS-MR.

After the spatial mapping, the sliding-window pass of Alg. 2
(:func:`repro.core.intra_gpu.parallelize`) regroups small co-located
operators into concurrent stages.
"""

from __future__ import annotations

import time

from ..costmodel.profile import CostProfile
from .debuglint import debug_lint_schedule
from .evaluator import evaluate_latency
from .intra_gpu import parallelize
from .list_schedule import build_singleton_schedule, list_schedule_latency
from .longest_path import longest_valid_path
from .priority import priority_order
from .result import ScheduleResult
from .schedule import Schedule

__all__ = ["schedule_hios_lp", "schedule_inter_gpu_lp"]


def _lp_spatial_mapping(profile: CostProfile) -> tuple[dict[str, int], list[str], int]:
    """Run the iterative longest-path mapping; returns (assignment,
    priority order, number of extracted paths)."""
    graph = profile.graph
    num_gpus = profile.num_gpus
    order = priority_order(graph)
    unscheduled = set(graph.names)
    assignment: dict[str, int] = {}
    paths = 0

    while unscheduled:
        path = longest_valid_path(graph, unscheduled)
        unscheduled.difference_update(path.vertices)
        paths += 1

        if not assignment and not profile.heterogeneous:
            # First path: all GPUs are interchangeable (homogeneity),
            # map onto GPU 0 without trying the rest.  With
            # heterogeneous speed factors (extension) every GPU is
            # tried like any other path.
            for v in path:
                assignment[v] = 0
            continue

        scheduled_order = [v for v in order if v in assignment or v in path.vertices]
        best_gpu = 0
        best_latency = float("inf")
        for gpu in range(num_gpus):
            for v in path:
                assignment[v] = gpu
            latency = list_schedule_latency(
                graph,
                assignment,
                scheduled_order,
                num_gpus,
                send_blocking=profile.send_blocking,
                gpu_speeds=profile.gpu_speeds,
            )
            if latency < best_latency:
                best_latency = latency
                best_gpu = gpu
        for v in path:
            assignment[v] = best_gpu

    return assignment, order, paths


def schedule_hios_lp(
    profile: CostProfile,
    window: int = 3,
    intra_gpu: bool = True,
) -> ScheduleResult:
    """Full HIOS-LP: LP-based inter-GPU mapping + Alg. 2 regrouping.

    Set ``intra_gpu=False`` for the paper's "inter-GPU w/ LP" ablation
    (spatial mapping with sequential per-GPU execution).
    """
    t0 = time.perf_counter()
    assignment, order, paths = _lp_spatial_mapping(profile)
    schedule: Schedule = build_singleton_schedule(assignment, order, profile.num_gpus)
    latency = evaluate_latency(profile, schedule, validate=True)
    stats: dict[str, object] = {"paths": paths, "inter_gpu_latency": latency}

    if intra_gpu:
        schedule, latency, intra_stats = parallelize(
            profile, schedule, window=window, priority=order
        )
        stats["intra_gpu"] = intra_stats

    algorithm = "hios-lp" if intra_gpu else "inter-lp"
    debug_lint_schedule(
        profile.graph,
        schedule,
        algorithm=algorithm,
        window=window if intra_gpu else None,
    )
    return ScheduleResult(
        algorithm=algorithm,
        schedule=schedule,
        latency=latency,
        scheduling_time=time.perf_counter() - t0,
        stats=stats,
    )


def schedule_inter_gpu_lp(profile: CostProfile) -> ScheduleResult:
    """The "inter-GPU w/ LP" comparison point (no Alg. 2 pass)."""
    return schedule_hios_lp(profile, intra_gpu=False)
