"""HIOS-LP — longest-path-based operator scheduling (Alg. 1).

The spatial mapping iterates: extract the longest *valid* path from
the unscheduled subgraph (see :mod:`repro.core.longest_path`), then try
mapping the entire path onto each of the ``M`` GPUs, keeping the GPU
that minimizes the latency of list-scheduling everything mapped so far
(temporal step, :mod:`repro.core.list_schedule`).  Mapping a whole path
at once removes every transfer along it — the global optimization that
distinguishes HIOS-LP from the operator-at-a-time HIOS-MR.

After the spatial mapping, the sliding-window pass of Alg. 2
(:func:`repro.core.intra_gpu.parallelize`) regroups small co-located
operators into concurrent stages.

Both passes run on the incremental engine of :mod:`repro.core.fasteval`
by default (prefix-replay across the ``M`` GPU candidates of one path;
stage-graph deltas across window candidates); ``fast=False`` falls back
to the from-scratch reference loops.  Both paths are differentially
tested bit-identical.
"""

from __future__ import annotations

import time
from typing import Any, MutableMapping, cast

from ..costmodel.profile import CostProfile
from ..obs import declog
from .debuglint import debug_lint_schedule
from .evaluator import evaluate_latency
from .fasteval import EvalCounters, PrefixReplayer, soa_latency
from .fastpath import LongestPathEngine
from .intra_gpu import parallelize
from .list_schedule import build_singleton_schedule, list_schedule_latency
from .longest_path import longest_valid_path
from .priority import priority_order
from .result import ScheduleResult
from .schedule import Schedule

__all__ = ["cached_spatial_lp", "schedule_hios_lp", "schedule_inter_gpu_lp"]


def _lp_spatial_mapping(
    profile: CostProfile,
    fast: bool = True,
    counters: EvalCounters | None = None,
) -> tuple[dict[str, int], list[str], int]:
    """Run the iterative longest-path mapping; returns (assignment,
    priority order, number of extracted paths)."""
    graph = profile.graph
    num_gpus = profile.num_gpus
    order = priority_order(graph)
    unscheduled = set(graph.names)
    assignment: dict[str, int] = {}
    paths = 0
    replayer = (
        PrefixReplayer(
            graph,
            num_gpus,
            send_blocking=profile.send_blocking,
            gpu_speeds=profile.gpu_speeds,
            counters=counters,
        )
        if fast
        else None
    )
    path_engine = LongestPathEngine(graph) if fast else None

    log = declog.active()
    while unscheduled:
        path = (
            path_engine.longest_valid_path(unscheduled)
            if path_engine is not None
            else longest_valid_path(graph, unscheduled)
        )
        unscheduled.difference_update(path.vertices)
        paths += 1

        if not assignment and not profile.heterogeneous:
            # First path: all GPUs are interchangeable (homogeneity),
            # map onto GPU 0 without trying the rest.  With
            # heterogeneous speed factors (extension) every GPU is
            # tried like any other path.
            for v in path:
                assignment[v] = 0
            if log is not None:
                log.emit(
                    "lp-path",
                    path_index=paths - 1,
                    ops=list(path.vertices),
                    winner=0,
                    pinned=True,
                )
            continue

        scheduled_order = [v for v in order if v in assignment or v in path.vertices]
        if replayer is not None:
            # The prefix before the first operator whose processing
            # reads this path's assignment is candidate-invariant:
            # simulate it once, replay only the suffix per GPU.
            replayer.snapshot(scheduled_order, assignment, path.vertices)
        best_gpu = 0
        best_latency = float("inf")
        candidates: dict[int, float] = {}
        for gpu in range(num_gpus):
            for v in path:
                assignment[v] = gpu
            if replayer is not None:
                latency = replayer.replay(assignment)
            else:
                latency = list_schedule_latency(
                    graph,
                    assignment,
                    scheduled_order,
                    num_gpus,
                    send_blocking=profile.send_blocking,
                    gpu_speeds=profile.gpu_speeds,
                )
            candidates[gpu] = latency
            if latency < best_latency:
                best_latency = latency
                best_gpu = gpu
        for v in path:
            assignment[v] = best_gpu
        if log is not None:
            log.emit(
                "lp-path",
                path_index=paths - 1,
                ops=list(path.vertices),
                winner=best_gpu,
                latency_ms=best_latency,
                candidates_ms={str(g): lat for g, lat in candidates.items()},
            )

    return assignment, order, paths


def cached_spatial_lp(
    profile: CostProfile,
    fast: bool = True,
    counters: EvalCounters | None = None,
    spatial_cache: MutableMapping[str, Any] | None = None,
) -> tuple[dict[str, int], list[str], int]:
    """LP spatial mapping, optionally served from a per-workload cache.

    The Alg. 1 mapping depends only on the profile — not on the Alg. 2
    window — so one computation serves ``hios-lp`` at every window,
    ``inter-lp`` and ``hios-lp-ls`` alike (the sweep engine's batch
    workers exploit exactly this).  The cache stores and hands out
    copies, so no caller can corrupt another's view; a hit returns the
    bit-identical mapping the fresh run would produce.  Note a hit
    skips the phase entirely: its decision-log events are not
    re-emitted and its evaluation counters do not re-accumulate.
    """
    if spatial_cache is not None:
        hit = spatial_cache.get("lp")
        if hit is not None:
            assignment, order, paths = cast(
                "tuple[dict[str, int], list[str], int]", hit
            )
            return dict(assignment), list(order), paths
    assignment, order, paths = _lp_spatial_mapping(profile, fast=fast, counters=counters)
    if spatial_cache is not None:
        spatial_cache["lp"] = (dict(assignment), list(order), paths)
    return assignment, order, paths


def schedule_hios_lp(
    profile: CostProfile,
    window: int = 3,
    intra_gpu: bool = True,
    fast: bool = True,
    spatial_cache: MutableMapping[str, Any] | None = None,
) -> ScheduleResult:
    """Full HIOS-LP: LP-based inter-GPU mapping + Alg. 2 regrouping.

    Set ``intra_gpu=False`` for the paper's "inter-GPU w/ LP" ablation
    (spatial mapping with sequential per-GPU execution).  ``fast=False``
    runs the retained reference inner loops instead of the incremental
    engine (same schedules and latencies, bit for bit).
    ``spatial_cache`` shares the window-independent Alg. 1 phase across
    calls on the same profile (see :func:`cached_spatial_lp`).
    """
    t0 = time.perf_counter()
    cache_hits0 = profile.stage_time_cache_hits
    counters = EvalCounters()
    assignment, order, paths = cached_spatial_lp(
        profile, fast=fast, counters=counters, spatial_cache=spatial_cache
    )
    t_spatial = time.perf_counter() - t0
    schedule: Schedule = build_singleton_schedule(assignment, order, profile.num_gpus)
    latency = (
        soa_latency(profile, schedule, validate=True, counters=counters)
        if fast
        else evaluate_latency(profile, schedule, validate=True)
    )
    stats: dict[str, object] = {"paths": paths, "inter_gpu_latency": latency}
    phase_times: dict[str, float] = {"spatial_mapping": t_spatial}

    if intra_gpu:
        t1 = time.perf_counter()
        schedule, latency, intra_stats = parallelize(
            profile,
            schedule,
            window=window,
            priority=order,
            validate=False,  # singleton schedule was validated just above
            fast=fast,
            counters=counters,
        )
        phase_times["intra_gpu"] = time.perf_counter() - t1
        stats["intra_gpu"] = intra_stats

    counters.cache_hits = profile.stage_time_cache_hits - cache_hits0
    stats.update(counters.to_stats())
    stats["phase_times"] = phase_times
    algorithm = "hios-lp" if intra_gpu else "inter-lp"
    debug_lint_schedule(
        profile.graph,
        schedule,
        algorithm=algorithm,
        window=window if intra_gpu else None,
    )
    return ScheduleResult(
        algorithm=algorithm,
        schedule=schedule,
        latency=latency,
        scheduling_time=time.perf_counter() - t0,
        stats=stats,
    )


def schedule_inter_gpu_lp(
    profile: CostProfile,
    fast: bool = True,
    spatial_cache: MutableMapping[str, Any] | None = None,
) -> ScheduleResult:
    """The "inter-GPU w/ LP" comparison point (no Alg. 2 pass)."""
    return schedule_hios_lp(
        profile, intra_gpu=False, fast=fast, spatial_cache=spatial_cache
    )
