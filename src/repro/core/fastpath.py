"""Vectorized longest-valid-path extraction (Alg. 1, line 5).

:func:`repro.core.longest_path.longest_valid_path` is called once per
HIOS-LP mapping iteration, and on the Section V workloads those calls
dominate the spatial-mapping phase: every call re-runs a Kahn
topological sort, re-derives the free set and anchor bonuses by walking
string-keyed adjacency dicts, and runs the two DP passes over
dictionaries.  Yet everything except the ``unscheduled`` set is
call-invariant.

:class:`LongestPathEngine` hoists the invariants — the int vertex
index, the topological order, the name-sorted successor CSR and the
flat edge arrays — into a per-graph object, then answers each query
with numpy kernels for the set-dependent parts:

* the *free* set and the ``start_bonus`` / ``end_bonus`` anchor maxima
  come from boolean masks and ``np.maximum.at`` scatters over the flat
  ``(src, dst, w)`` edge arrays — no per-vertex neighbour walks;
* the tail/head DP passes run as scalar loops over int-indexed lists
  (the data dependency ``tail[v] <- tail[succ]`` makes them inherently
  sequential), with the successor scan restricted by a boolean
  membership list instead of set hashing.

Bit-identity with the reference is structural: maxima are selections
(``np.maximum.at`` picks the same float the reference ``max`` picks),
and the DP performs the identical sequence of additions and strict
comparisons, including the reference's lexicographic tie-break on the
start vertex.  The differential tests in
``tests/core/test_fastpath.py`` pin exact equality of both the path and
its length; ``fast=False`` on the schedulers still runs the reference.
"""

from __future__ import annotations

from typing import AbstractSet

import numpy as np

from .graph import GraphError, OpGraph
from .longest_path import ValidPath

__all__ = ["LongestPathEngine"]

_NEG_INF = float("-inf")


class LongestPathEngine:
    """Per-graph accelerator for :func:`longest_valid_path` queries.

    Construction runs the topological sort once and lowers the graph to
    int CSR arrays; :meth:`longest_valid_path` then answers each query
    in ``O(|V| + |E|)`` with no string hashing in the inner loops.  The
    engine revalidates against :attr:`OpGraph.version` and rebuilds
    after a mutation, so holding one across scheduler iterations is
    safe.
    """

    def __init__(self, graph: OpGraph) -> None:
        self._graph = graph
        self._build()

    def _build(self) -> None:
        graph = self._graph
        self._version = graph.version
        names = graph.names
        self._names: list[str] = names
        self._index: dict[str, int] = {v: i for i, v in enumerate(names)}
        n = len(names)
        self._n = n
        # raises GraphError on cycles, like the reference's per-call sort
        self._topo: list[int] = [self._index[v] for v in graph.topological_order()]
        self._cost: list[float] = [graph.cost(v) for v in names]
        # successor CSR in name-sorted order (the reference scans
        # ``sorted(graph.successors(v))``, so the tie-break of equal
        # candidates is positional here exactly as it is there)
        sptr = [0]
        sdst: list[int] = []
        sw: list[float] = []
        for v in names:
            for s in sorted(graph.successors(v)):
                sdst.append(self._index[s])
                sw.append(graph.transfer(v, s))
            sptr.append(len(sdst))
        self._sptr = sptr
        self._sdst = sdst
        self._sw = sw
        # flat edge arrays for the numpy bonus/free kernels
        edges = graph.edges()
        self._esrc = np.asarray(
            [self._index[u] for u, _v, _w in edges], dtype=np.int64
        )
        self._edst = np.asarray(
            [self._index[v] for _u, v, _w in edges], dtype=np.int64
        )
        self._ew = np.asarray([w for _u, _v, w in edges], dtype=np.float64)

    def longest_valid_path(self, unscheduled: AbstractSet[str]) -> ValidPath:
        """Longest valid path within ``unscheduled`` — same contract,
        same errors and bit-identical result as the module-level
        reference."""
        if self._version != self._graph.version:
            self._build()
        if not unscheduled:
            raise GraphError("no unscheduled vertices left")
        n = self._n
        index = self._index
        unsched = np.zeros(n, dtype=bool)
        for v in unscheduled:
            i = index.get(v)
            if i is None:
                raise GraphError(f"unscheduled vertex {v!r} not in graph")
            unsched[i] = True

        # Anchor bonuses and the free set, from the flat edge arrays:
        # an edge contributes to start_bonus[dst] when its source is
        # scheduled and its target is not, and symmetrically for
        # end_bonus[src]; the same masks mark un-free vertices.
        u_src = unsched[self._esrc]
        u_dst = unsched[self._edst]
        m_in = u_dst & ~u_src  # scheduled -> unscheduled
        m_out = u_src & ~u_dst  # unscheduled -> scheduled
        start_bonus = np.zeros(n, dtype=np.float64)
        np.maximum.at(start_bonus, self._edst[m_in], self._ew[m_in])
        end_bonus = np.zeros(n, dtype=np.float64)
        np.maximum.at(end_bonus, self._esrc[m_out], self._ew[m_out])
        anchored = np.zeros(n, dtype=bool)
        anchored[self._edst[m_in]] = True
        anchored[self._esrc[m_out]] = True
        free = unsched & ~anchored

        unsched_l = unsched.tolist()
        free_l = free.tolist()
        sb = start_bonus.tolist()
        eb = end_bonus.tolist()
        cost = self._cost
        sptr = self._sptr
        sdst = self._sdst
        sw = self._sw
        order = [i for i in self._topo if unsched_l[i]]

        # tail pass: best continuation past v (v must be free to continue)
        tail = [0.0] * n
        tail_next = [-1] * n
        for v in reversed(order):
            best = eb[v]
            best_next = -1
            if free_l[v]:
                for ei in range(sptr[v], sptr[v + 1]):
                    s = sdst[ei]
                    if not unsched_l[s]:
                        continue
                    cand = sw[ei] + tail[s]
                    if cand > best:
                        best = cand
                        best_next = s
            tail[v] = cost[v] + best
            tail_next[v] = best_next

        # head pass: v as the (free-exempt) first vertex
        names = self._names
        best_start = -1
        best_len = _NEG_INF
        head_next = [-1] * n
        for v in order:
            best = eb[v]
            nxt = -1
            for ei in range(sptr[v], sptr[v + 1]):
                s = sdst[ei]
                if not unsched_l[s]:
                    continue
                cand = sw[ei] + tail[s]
                if cand > best:
                    best = cand
                    nxt = s
            head_next[v] = nxt
            total = sb[v] + cost[v] + best
            if total > best_len or (
                total == best_len and best_start >= 0 and names[v] < names[best_start]
            ):
                best_len = total
                best_start = v

        assert best_start >= 0
        path = [names[best_start]]
        cursor = head_next[best_start]
        while cursor >= 0:
            path.append(names[cursor])
            cursor = tail_next[cursor]
        return ValidPath(vertices=tuple(path), length=best_len)
