"""Priority indicators and path-length utilities (Section IV-A).

The *priority indicator* ``p(v)`` is the length of the longest path
from ``v`` to any sink of the original computation graph, counting both
vertex weights (operator execution times) and edge weights (worst-case
inter-GPU transfer times).  Sorting operators by descending ``p(v)``
yields a topological order in which every operator precedes all of its
successors — the order used by the temporal scheduling step of Alg. 1,
by HIOS-MR (Alg. 3), and by the window sweep of Alg. 2.
"""

from __future__ import annotations

from .graph import OpGraph

__all__ = [
    "priority_indicators",
    "priority_order",
    "critical_path_length",
    "critical_path",
]


def priority_indicators(graph: OpGraph) -> dict[str, float]:
    """Compute ``p(v)`` for every operator.

    ``p(v) = t(v) + max over successors s of (t(v, s) + p(s))`` with
    ``p(sink) = t(sink)``.  This equals the negated latest start time of
    ``v`` relative to the makespan when every adjacent pair of operators
    is pessimistically assumed to sit on different GPUs.
    """
    order = graph.topological_order()
    p: dict[str, float] = {}
    for v in reversed(order):
        best = 0.0
        for s in graph.successors(v):
            cand = graph.transfer(v, s) + p[s]
            if cand > best:
                best = cand
        p[v] = graph.cost(v) + best
    return p


def priority_order(graph: OpGraph) -> list[str]:
    """Operators sorted by descending priority indicator.

    Ties are broken by name so the order is deterministic; any
    tie-break preserves topological validity because a successor's
    priority is strictly smaller whenever vertex weights are positive,
    and never larger otherwise (zero-cost chains are ordered by a
    secondary topological rank).
    """
    p = priority_indicators(graph)
    topo_rank = {v: i for i, v in enumerate(graph.topological_order())}
    return sorted(graph.names, key=lambda v: (-p[v], topo_rank[v], v))


def critical_path_length(graph: OpGraph, include_transfers: bool = True) -> float:
    """Length of the longest source-to-sink path.

    With ``include_transfers=False`` edge weights are ignored, giving
    the classic critical-path lower bound on latency for *any* schedule
    (transfers can be avoided by co-locating operators, computation
    cannot).
    """
    order = graph.topological_order()
    dist: dict[str, float] = {}
    for v in reversed(order):
        best = 0.0
        for s in graph.successors(v):
            edge = graph.transfer(v, s) if include_transfers else 0.0
            cand = edge + dist[s]
            if cand > best:
                best = cand
        dist[v] = graph.cost(v) + best
    return max((dist[v] for v in graph.sources()), default=0.0)


def critical_path(graph: OpGraph, include_transfers: bool = True) -> list[str]:
    """One longest source-to-sink path (vertex names, in order)."""
    order = graph.topological_order()
    dist: dict[str, float] = {}
    nxt: dict[str, str | None] = {}
    for v in reversed(order):
        best = 0.0
        best_s: str | None = None
        for s in sorted(graph.successors(v)):
            edge = graph.transfer(v, s) if include_transfers else 0.0
            cand = edge + dist[s]
            if cand > best:
                best = cand
                best_s = s
        dist[v] = graph.cost(v) + best
        nxt[v] = best_s
    if not graph.names:
        return []
    start = max(graph.sources(), key=lambda v: (dist[v], v))
    path = [start]
    while nxt[path[-1]] is not None:
        path.append(nxt[path[-1]])  # type: ignore[arg-type]
    return path
