"""Longest *valid* path extraction (Alg. 1, line 5).

Each HIOS-LP iteration pulls from the unscheduled subgraph ``G'`` the
longest path ``P`` whose *intermediate* vertices (all vertices of
``P ∩ G'`` except the first and the last) have no edges from/to any
already-scheduled vertex.  The first and last unscheduled vertices on
the path are exempt, and the path's length additionally counts one
optional *anchor* edge on each side — an edge arriving at the first
vertex from a scheduled vertex and an edge leaving the last vertex to a
scheduled vertex — exactly as in the paper's Fig. 4 walk-through where
``P2 = {e2, v3, e4, v5, e6}`` includes the boundary edges ``e2`` and
``e6`` but excludes the longer candidate through ``v5 -> v6`` because
its intermediate vertex ``v5`` touches the scheduled ``v6``.

Path length counts vertex weights (operator times) *and* edge weights
(worst-case inter-GPU transfer times): the path is selected before its
GPU is chosen, so adjacent operators are pessimistically assumed to be
split across GPUs.

The implementation is a linear-time DP over the DAG induced on the
unscheduled vertex set (two passes), well below the
``O(|V|^2 |E|)`` bound quoted in the paper's complexity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterator

from .graph import GraphError, OpGraph

__all__ = ["ValidPath", "longest_valid_path"]

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class ValidPath:
    """A valid path: its unscheduled vertices in order and its length
    (vertex weights + internal edge weights + anchor edge weights)."""

    vertices: tuple[str, ...]
    length: float

    def __len__(self) -> int:
        return len(self.vertices)

    def __iter__(self) -> Iterator[str]:
        return iter(self.vertices)


def longest_valid_path(
    graph: OpGraph, unscheduled: AbstractSet[str]
) -> ValidPath:
    """Find the longest valid path within ``unscheduled``.

    Parameters
    ----------
    graph:
        The full computation graph ``G``.
    unscheduled:
        Names of the vertices still in ``G'``.  Must be non-empty and a
        subset of ``graph``.

    Returns
    -------
    ValidPath
        Ties are broken deterministically (lexicographically smallest
        successor chain).
    """
    if not unscheduled:
        raise GraphError("no unscheduled vertices left")
    for v in unscheduled:
        if v not in graph:
            raise GraphError(f"unscheduled vertex {v!r} not in graph")

    scheduled = {v for v in graph.names if v not in unscheduled}

    # A vertex is *free* when it has no edge to or from the scheduled
    # subgraph; only free vertices may appear in a path's interior.
    free: set[str] = set()
    start_bonus: dict[str, float] = {}
    end_bonus: dict[str, float] = {}
    for v in unscheduled:
        in_sched = [u for u in graph.predecessors(v) if u in scheduled]
        out_sched = [s for s in graph.successors(v) if s in scheduled]
        if not in_sched and not out_sched:
            free.add(v)
        start_bonus[v] = max((graph.transfer(u, v) for u in in_sched), default=0.0)
        end_bonus[v] = max((graph.transfer(v, s) for s in out_sched), default=0.0)

    # ``tail[v]``: best length of a valid path in which ``v`` is NOT the
    # first vertex (so continuing past ``v`` requires ``v`` to be free),
    # counting t(v), downstream weights and the final anchor edge.
    order = [v for v in graph.topological_order() if v in unscheduled]
    tail: dict[str, float] = {}
    tail_next: dict[str, str | None] = {}
    for v in reversed(order):
        best = end_bonus[v]
        best_next: str | None = None
        if v in free:
            for s in sorted(graph.successors(v)):
                if s not in unscheduled:
                    continue
                cand = graph.transfer(v, s) + tail[s]
                if cand > best:
                    best = cand
                    best_next = s
        tail[v] = graph.cost(v) + best
        tail_next[v] = best_next

    # ``head[v]``: best length of a valid path whose FIRST vertex is
    # ``v`` (exempt from the free constraint), excluding the start
    # anchor bonus.
    best_start: str | None = None
    best_len = _NEG_INF
    head_next: dict[str, str | None] = {}
    for v in order:
        best = end_bonus[v]
        nxt: str | None = None
        for s in sorted(graph.successors(v)):
            if s not in unscheduled:
                continue
            cand = graph.transfer(v, s) + tail[s]
            if cand > best:
                best = cand
                nxt = s
        head_next[v] = nxt
        total = start_bonus[v] + graph.cost(v) + best
        if total > best_len or (total == best_len and best_start is not None and v < best_start):
            best_len = total
            best_start = v

    assert best_start is not None
    path = [best_start]
    cursor = head_next[best_start]
    while cursor is not None:
        path.append(cursor)
        cursor = tail_next[cursor]
    return ValidPath(vertices=tuple(path), length=best_len)
