"""Core HIOS scheduling: graphs, schedules, evaluation and the paper's
algorithms (HIOS-LP, HIOS-MR, Alg. 2, IOS and sequential baselines)."""

from .analysis import ScheduleMetrics, analyze_schedule
from .api import ALGORITHMS, make_profile, schedule_graph
from .bounds import (
    bottleneck_bound,
    critical_path_bound,
    latency_lower_bound,
    optimality_gap,
    work_bound,
)
from .brute_force import schedule_brute_force
from .evaluator import EvaluationResult, StageTiming, evaluate_latency, evaluate_schedule
from .fasteval import EvalCounters, PrefixReplayer, StageGraphEvaluator, soa_latency
from .graph import GraphError, Operator, OpGraph
from .hios_lp import schedule_hios_lp, schedule_inter_gpu_lp
from .hios_mr import schedule_hios_mr, schedule_inter_gpu_mr
from .intra_gpu import IntraGpuStats, parallelize
from .ios import schedule_ios
from .list_schedule import build_singleton_schedule, list_schedule_latency
from .longest_path import ValidPath, longest_valid_path
from .graphio import graph_from_dict, graph_to_dict, load_graph, save_graph
from .priority import (
    critical_path,
    critical_path_length,
    priority_indicators,
    priority_order,
)
from .refine import local_search_assignment, schedule_hios_lp_ls
from .repair import (
    RepairError,
    RepairResult,
    repair_schedule,
    run_with_repair,
    splice_traces,
)
from .result import ScheduleResult
from .schedule import Schedule, ScheduleError, Stage
from .sequential import schedule_sequential

__all__ = [
    "ALGORITHMS",
    "EvalCounters",
    "EvaluationResult",
    "GraphError",
    "IntraGpuStats",
    "OpGraph",
    "Operator",
    "PrefixReplayer",
    "StageGraphEvaluator",
    "soa_latency",
    "analyze_schedule",
    "bottleneck_bound",
    "critical_path_bound",
    "latency_lower_bound",
    "optimality_gap",
    "work_bound",
    "RepairError",
    "RepairResult",
    "Schedule",
    "ScheduleError",
    "ScheduleMetrics",
    "ScheduleResult",
    "Stage",
    "StageTiming",
    "ValidPath",
    "build_singleton_schedule",
    "critical_path",
    "critical_path_length",
    "evaluate_latency",
    "evaluate_schedule",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "local_search_assignment",
    "save_graph",
    "schedule_hios_lp_ls",
    "list_schedule_latency",
    "longest_valid_path",
    "make_profile",
    "parallelize",
    "priority_indicators",
    "priority_order",
    "repair_schedule",
    "run_with_repair",
    "schedule_brute_force",
    "schedule_graph",
    "schedule_hios_lp",
    "schedule_hios_mr",
    "schedule_inter_gpu_lp",
    "schedule_inter_gpu_mr",
    "schedule_ios",
    "schedule_sequential",
    "splice_traces",
]
