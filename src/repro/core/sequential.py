"""Sequential baseline: one operator at a time on a single GPU.

The paper's weakest comparison point — operators execute one by one in
a topological order on one GPU, so the latency is simply the sum of all
operator execution times (no transfers, no concurrency).
"""

from __future__ import annotations

import time

from ..costmodel.profile import CostProfile
from .debuglint import debug_lint_schedule
from .evaluator import evaluate_latency
from .priority import priority_order
from .result import ScheduleResult
from .schedule import Schedule, Stage

__all__ = ["schedule_sequential"]


def schedule_sequential(profile: CostProfile, gpu: int = 0) -> ScheduleResult:
    """Place every operator in its own stage on ``gpu``, in descending
    priority-indicator order (a topological order)."""
    t0 = time.perf_counter()
    if not (0 <= gpu < profile.num_gpus):
        raise ValueError(f"GPU index {gpu} out of range for {profile.num_gpus} GPUs")
    schedule = Schedule(profile.num_gpus)
    for v in priority_order(profile.graph):
        schedule.append_stage(Stage(gpu, (v,)))
    latency = evaluate_latency(profile, schedule, validate=True)
    debug_lint_schedule(profile.graph, schedule, algorithm="sequential")
    return ScheduleResult(
        algorithm="sequential",
        schedule=schedule,
        latency=latency,
        scheduling_time=time.perf_counter() - t0,
    )
