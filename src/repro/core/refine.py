"""Local-search refinement of inter-GPU mappings (extension).

The paper maps whole longest paths (HIOS-LP) or single operators
(HIOS-MR) greedily and never revisits a placement.  This module adds a
post-pass the paper leaves on the table: operator-level best-improvement
local search over the spatial assignment — repeatedly move the single
operator whose reassignment to another GPU most reduces the
list-scheduled latency, until a fixed point or a round budget.

``schedule_hios_lp_ls`` packages it as "HIOS-LP + local search":
Alg. 1 spatial mapping -> local search -> Alg. 2 intra-GPU pass.  The
ablation benchmarks quantify how much headroom the greedy path mapping
leaves (typically a few percent on the Section V workloads).
"""

from __future__ import annotations

import time
from typing import Any, Mapping, MutableMapping

from ..costmodel.profile import CostProfile
from .debuglint import debug_lint_schedule
from .evaluator import evaluate_latency
from .fasteval import EvalCounters, PrefixReplayer, soa_latency
from .hios_lp import cached_spatial_lp
from .intra_gpu import parallelize
from .list_schedule import build_singleton_schedule, list_schedule_latency
from .result import ScheduleResult

__all__ = ["local_search_assignment", "schedule_hios_lp_ls"]


def local_search_assignment(
    profile: CostProfile,
    assignment: Mapping[str, int],
    order: list[str],
    max_rounds: int = 3,
    fast: bool = True,
    counters: EvalCounters | None = None,
) -> tuple[dict[str, int], float, int]:
    """Best-improvement local search over operator-to-GPU moves.

    Returns ``(assignment, latency, moves)``.  Each round scans every
    operator against every other GPU and applies the single best move;
    a round without improvement terminates the search.  Complexity is
    ``O(rounds * |V| * M * (|V| + |E|))`` — polynomial, like the HIOS
    passes it refines.  With ``fast=True`` the per-move evaluation
    replays only the suffix after the moved operator's snapshot
    boundary (one prefix simulation per operator instead of one full
    simulation per (operator, GPU) pair) — bit-identical latencies.
    """
    if max_rounds < 0:
        raise ValueError("max_rounds must be non-negative")
    graph = profile.graph
    M = profile.num_gpus
    current = dict(assignment)
    best = list_schedule_latency(
        graph, current, order, M,
        send_blocking=profile.send_blocking, gpu_speeds=profile.gpu_speeds,
    )
    replayer = (
        PrefixReplayer(
            graph, M,
            send_blocking=profile.send_blocking,
            gpu_speeds=profile.gpu_speeds,
            counters=counters,
        )
        if fast
        else None
    )
    moves = 0
    for _ in range(max_rounds):
        # the best move carries the latency it was priced at, so
        # applying it needs no re-evaluation
        best_move: tuple[str, int, float] | None = None
        best_gain = 1e-12
        for v in order:
            home = current[v]
            if replayer is not None:
                replayer.snapshot(order, current, (v,))
            for gpu in range(M):
                if gpu == home:
                    continue
                current[v] = gpu
                if replayer is not None:
                    lat = replayer.replay(current)
                else:
                    lat = list_schedule_latency(
                        graph, current, order, M,
                        send_blocking=profile.send_blocking,
                        gpu_speeds=profile.gpu_speeds,
                    )
                gain = best - lat
                if gain > best_gain:
                    best_gain = gain
                    best_move = (v, gpu, lat)
            current[v] = home
        if best_move is None:
            break
        v, gpu, best = best_move
        current[v] = gpu
        moves += 1
    return current, best, moves


def schedule_hios_lp_ls(
    profile: CostProfile,
    window: int = 3,
    intra_gpu: bool = True,
    max_rounds: int = 3,
    fast: bool = True,
    spatial_cache: MutableMapping[str, Any] | None = None,
) -> ScheduleResult:
    """HIOS-LP with operator-level local search between Alg. 1 and Alg. 2."""
    t0 = time.perf_counter()
    cache_hits0 = profile.stage_time_cache_hits
    counters = EvalCounters()
    assignment, order, paths = cached_spatial_lp(
        profile, fast=fast, counters=counters, spatial_cache=spatial_cache
    )
    t_spatial = time.perf_counter() - t0
    assignment, _, moves = local_search_assignment(
        profile, assignment, order, max_rounds=max_rounds, fast=fast, counters=counters
    )
    t_search = time.perf_counter() - t0 - t_spatial
    schedule = build_singleton_schedule(assignment, order, profile.num_gpus)
    latency = (
        soa_latency(profile, schedule, validate=True, counters=counters)
        if fast
        else evaluate_latency(profile, schedule, validate=True)
    )
    stats: dict[str, object] = {
        "paths": paths,
        "local_search_moves": moves,
        "inter_gpu_latency": latency,
    }
    phase_times: dict[str, float] = {
        "spatial_mapping": t_spatial,
        "local_search": t_search,
    }
    if intra_gpu:
        t1 = time.perf_counter()
        schedule, latency, intra_stats = parallelize(
            profile,
            schedule,
            window=window,
            priority=order,
            validate=False,  # singleton schedule was validated just above
            fast=fast,
            counters=counters,
        )
        phase_times["intra_gpu"] = time.perf_counter() - t1
        stats["intra_gpu"] = intra_stats
    counters.cache_hits = profile.stage_time_cache_hits - cache_hits0
    stats.update(counters.to_stats())
    stats["phase_times"] = phase_times
    debug_lint_schedule(
        profile.graph,
        schedule,
        algorithm="hios-lp-ls",
        window=window if intra_gpu else None,
    )
    return ScheduleResult(
        algorithm="hios-lp-ls",
        schedule=schedule,
        latency=latency,
        scheduling_time=time.perf_counter() - t0,
        stats=stats,
    )
