"""Local-search refinement of inter-GPU mappings (extension).

The paper maps whole longest paths (HIOS-LP) or single operators
(HIOS-MR) greedily and never revisits a placement.  This module adds a
post-pass the paper leaves on the table: operator-level best-improvement
local search over the spatial assignment — repeatedly move the single
operator whose reassignment to another GPU most reduces the
list-scheduled latency, until a fixed point or a round budget.

``schedule_hios_lp_ls`` packages it as "HIOS-LP + local search":
Alg. 1 spatial mapping -> local search -> Alg. 2 intra-GPU pass.  The
ablation benchmarks quantify how much headroom the greedy path mapping
leaves (typically a few percent on the Section V workloads).
"""

from __future__ import annotations

import time
from typing import Mapping

from ..costmodel.profile import CostProfile
from .debuglint import debug_lint_schedule
from .evaluator import evaluate_latency
from .hios_lp import _lp_spatial_mapping
from .intra_gpu import parallelize
from .list_schedule import build_singleton_schedule, list_schedule_latency
from .result import ScheduleResult

__all__ = ["local_search_assignment", "schedule_hios_lp_ls"]


def local_search_assignment(
    profile: CostProfile,
    assignment: Mapping[str, int],
    order: list[str],
    max_rounds: int = 3,
) -> tuple[dict[str, int], float, int]:
    """Best-improvement local search over operator-to-GPU moves.

    Returns ``(assignment, latency, moves)``.  Each round scans every
    operator against every other GPU and applies the single best move;
    a round without improvement terminates the search.  Complexity is
    ``O(rounds * |V| * M * (|V| + |E|))`` — polynomial, like the HIOS
    passes it refines.
    """
    if max_rounds < 0:
        raise ValueError("max_rounds must be non-negative")
    graph = profile.graph
    M = profile.num_gpus
    current = dict(assignment)
    best = list_schedule_latency(
        graph, current, order, M,
        send_blocking=profile.send_blocking, gpu_speeds=profile.gpu_speeds,
    )
    moves = 0
    for _ in range(max_rounds):
        best_move: tuple[str, int] | None = None
        best_gain = 1e-12
        for v in order:
            home = current[v]
            for gpu in range(M):
                if gpu == home:
                    continue
                current[v] = gpu
                lat = list_schedule_latency(
                    graph, current, order, M,
                    send_blocking=profile.send_blocking,
                    gpu_speeds=profile.gpu_speeds,
                )
                gain = best - lat
                if gain > best_gain:
                    best_gain = gain
                    best_move = (v, gpu)
            current[v] = home
        if best_move is None:
            break
        v, gpu = best_move
        current[v] = gpu
        best -= best_gain
        best = list_schedule_latency(
            graph, current, order, M,
            send_blocking=profile.send_blocking, gpu_speeds=profile.gpu_speeds,
        )
        moves += 1
    return current, best, moves


def schedule_hios_lp_ls(
    profile: CostProfile,
    window: int = 3,
    intra_gpu: bool = True,
    max_rounds: int = 3,
) -> ScheduleResult:
    """HIOS-LP with operator-level local search between Alg. 1 and Alg. 2."""
    t0 = time.perf_counter()
    assignment, order, paths = _lp_spatial_mapping(profile)
    assignment, _, moves = local_search_assignment(
        profile, assignment, order, max_rounds=max_rounds
    )
    schedule = build_singleton_schedule(assignment, order, profile.num_gpus)
    latency = evaluate_latency(profile, schedule, validate=True)
    stats: dict[str, object] = {
        "paths": paths,
        "local_search_moves": moves,
        "inter_gpu_latency": latency,
    }
    if intra_gpu:
        schedule, latency, intra_stats = parallelize(
            profile, schedule, window=window, priority=order
        )
        stats["intra_gpu"] = intra_stats
    debug_lint_schedule(
        profile.graph,
        schedule,
        algorithm="hios-lp-ls",
        window=window if intra_gpu else None,
    )
    return ScheduleResult(
        algorithm="hios-lp-ls",
        schedule=schedule,
        latency=latency,
        scheduling_time=time.perf_counter() - t0,
        stats=stats,
    )
