"""Computation graph: the DAG ``G = (V, E)`` of Section III-A.

Each vertex is an *operator* with a weight ``t(v)`` — the execution time
of the operator running alone on one GPU.  Each edge ``(u, v)`` carries a
weight ``t(u, v)`` — the time to transfer the tensor produced by ``u``
to another GPU when ``u`` and ``v`` are mapped to different devices.

The graph is the single input shared by every scheduler in
:mod:`repro.core`; it is deliberately framework-agnostic (no tensors, no
kernels) so that the same scheduling code serves both the analytic
simulations of Section V and the engine-backed experiments of
Section VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["GraphError", "Operator", "OpGraph"]


class GraphError(ValueError):
    """Raised for structurally invalid graphs (cycles, unknown vertices, ...)."""


@dataclass(frozen=True)
class Operator:
    """A single operator (vertex) of the computation graph.

    Parameters
    ----------
    name:
        Unique identifier within the graph.
    cost:
        ``t(v)`` — solo execution time in milliseconds.
    occupancy:
        Fraction of a GPU's compute resources the operator can use when
        running alone, in ``(0, 1]``.  Drives the concurrency cost model
        ``t(S)`` (see :mod:`repro.costmodel.concurrency`).  ``1.0`` means
        the operator saturates the device.
    output_bytes:
        Size of the operator's output tensor; used by link-based transfer
        models.  ``0`` means "unknown" (ratio-based models ignore it).
    kind:
        Free-form operator type tag ("conv", "pool", ...), for reporting.
    attrs:
        Arbitrary extra attributes (shapes, kernel params, ...).
    """

    name: str
    cost: float = 1.0
    occupancy: float = 1.0
    output_bytes: int = 0
    kind: str = "op"
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise GraphError(f"operator {self.name!r} has negative cost {self.cost}")
        if not (0.0 < self.occupancy <= 1.0):
            raise GraphError(
                f"operator {self.name!r} occupancy {self.occupancy} not in (0, 1]"
            )
        if self.output_bytes < 0:
            raise GraphError(
                f"operator {self.name!r} has negative output size {self.output_bytes}"
            )


class OpGraph:
    """Directed acyclic computation graph of operators.

    Vertices are addressed by operator name.  Edge weights default to
    ``0.0`` and are interpreted as the inter-GPU transfer time ``t(u,v)``
    in milliseconds.
    """

    def __init__(self) -> None:
        self._ops: dict[str, Operator] = {}
        self._succ: dict[str, dict[str, float]] = {}
        self._pred: dict[str, dict[str, float]] = {}
        # bumped on every mutation; caches (the bitset transitive
        # closure below, CostProfile's stage-time memo) key on it
        self._version = 0
        self._closure: list[int] | None = None
        self._closure_index: dict[str, int] = {}
        self._closure_version = -1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_operator(self, op: Operator | str, **kwargs: Any) -> Operator:
        """Add an operator.  Accepts an :class:`Operator` or a name plus
        keyword fields (``cost=``, ``occupancy=``, ...)."""
        if isinstance(op, str):
            op = Operator(op, **kwargs)
        elif kwargs:
            raise TypeError("keyword fields are only allowed with a string name")
        if op.name in self._ops:
            raise GraphError(f"duplicate operator {op.name!r}")
        self._ops[op.name] = op
        self._succ[op.name] = {}
        self._pred[op.name] = {}
        self._version += 1
        return op

    def add_edge(self, u: str, v: str, transfer: float = 0.0) -> None:
        """Add dependency edge ``u -> v`` with transfer time ``t(u, v)``."""
        for name in (u, v):
            if name not in self._ops:
                raise GraphError(f"unknown operator {name!r}")
        if u == v:
            raise GraphError(f"self-loop on {u!r}")
        if transfer < 0:
            raise GraphError(f"negative transfer time on edge ({u!r}, {v!r})")
        if v in self._succ[u]:
            raise GraphError(f"duplicate edge ({u!r}, {v!r})")
        self._succ[u][v] = transfer
        self._pred[v][u] = transfer
        self._version += 1

    def set_transfer(self, u: str, v: str, transfer: float) -> None:
        """Overwrite the transfer weight of an existing edge."""
        if v not in self._succ.get(u, {}):
            raise GraphError(f"no edge ({u!r}, {v!r})")
        if transfer < 0:
            raise GraphError(f"negative transfer time on edge ({u!r}, {v!r})")
        self._succ[u][v] = transfer
        self._pred[v][u] = transfer
        self._version += 1

    def replace_operator(self, op: Operator) -> None:
        """Replace the payload of an existing vertex, keeping its edges."""
        if op.name not in self._ops:
            raise GraphError(f"unknown operator {op.name!r}")
        self._ops[op.name] = op
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[str]:
        return iter(self._ops)

    def operator(self, name: str) -> Operator:
        try:
            return self._ops[name]
        except KeyError:
            raise GraphError(f"unknown operator {name!r}") from None

    def operators(self) -> list[Operator]:
        return list(self._ops.values())

    @property
    def names(self) -> list[str]:
        return list(self._ops)

    def cost(self, name: str) -> float:
        """Vertex weight ``t(v)``."""
        return self.operator(name).cost

    def transfer(self, u: str, v: str) -> float:
        """Edge weight ``t(u, v)``; raises if the edge does not exist."""
        try:
            return self._succ[u][v]
        except KeyError:
            raise GraphError(f"no edge ({u!r}, {v!r})") from None

    def successors(self, name: str) -> list[str]:
        if name not in self._ops:
            raise GraphError(f"unknown operator {name!r}")
        return list(self._succ[name])

    def predecessors(self, name: str) -> list[str]:
        if name not in self._ops:
            raise GraphError(f"unknown operator {name!r}")
        return list(self._pred[name])

    @property
    def version(self) -> int:
        """Mutation counter; bumped by every structural or payload
        change.  Caches derived from the graph (the transitive closure,
        :meth:`~repro.costmodel.profile.CostProfile.stage_time` memos)
        key on it to stay coherent."""
        return self._version

    def out_degree(self, name: str) -> int:
        return len(self._succ[name])

    def in_degree(self, name: str) -> int:
        return len(self._pred[name])

    def edges(self) -> list[tuple[str, str, float]]:
        return [
            (u, v, w) for u, nbrs in self._succ.items() for v, w in nbrs.items()
        ]

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._succ.values())

    def has_edge(self, u: str, v: str) -> bool:
        return v in self._succ.get(u, {})

    def sources(self) -> list[str]:
        """Operators without predecessors (model inputs)."""
        return [v for v in self._ops if not self._pred[v]]

    def sinks(self) -> list[str]:
        """Operators without successors (model outputs)."""
        return [v for v in self._ops if not self._succ[v]]

    # ------------------------------------------------------------------
    # algorithms
    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Kahn topological order; raises :class:`GraphError` on cycles."""
        indeg = {v: len(self._pred[v]) for v in self._ops}
        ready = [v for v, d in indeg.items() if d == 0]
        order: list[str] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for s in self._succ[v]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self._ops):
            raise GraphError("computation graph contains a cycle")
        return order

    def validate(self) -> None:
        """Raise :class:`GraphError` on any error-severity lint finding.

        A thin wrapper over the ``repro.lint`` graph rules: acyclicity
        (G001) plus finite weights (G007).  Use
        :func:`repro.lint.lint_graph` directly to also collect the
        warning/info findings instead of failing on the first error.
        """
        from ..lint.api import lint_graph  # runtime import: lint imports us

        lint_graph(self, errors_only=True).raise_errors(GraphError)

    def is_dag(self) -> bool:
        try:
            self.topological_order()
        except GraphError:
            return False
        return True

    def ancestors(self, name: str) -> set[str]:
        """All transitive predecessors of ``name`` (excluding itself)."""
        seen: set[str] = set()
        stack = list(self._pred[name])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._pred[u])
        return seen

    def descendants(self, name: str) -> set[str]:
        """All transitive successors of ``name`` (excluding itself)."""
        seen: set[str] = set()
        stack = list(self._succ[name])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._succ[u])
        return seen

    def descendant_masks(self) -> tuple[list[int], dict[str, int]]:
        """Bitset transitive closure: ``(masks, index)`` where
        ``masks[index[v]]`` has bit ``index[w]`` set iff ``w`` is a
        strict descendant of ``v``.

        Computed once per graph mutation (lazily, in one reverse
        topological sweep of word-parallel OR operations) and cached, so
        :meth:`reachable` / :meth:`independent` answer in O(1)-ish word
        operations instead of BFS-ing the graph per query — the Alg. 2
        window sweep and the lint rules issue these queries per window.
        """
        if self._closure is not None and self._closure_version == self._version:
            return self._closure, self._closure_index
        index = {v: i for i, v in enumerate(self._ops)}
        masks = [0] * len(index)
        for v in reversed(self.topological_order()):
            m = 0
            for s in self._succ[v]:
                i = index[s]
                m |= masks[i] | (1 << i)
            masks[index[v]] = m
        self._closure = masks
        self._closure_index = index
        self._closure_version = self._version
        return masks, index

    def _reachable_bfs(self, u: str, v: str) -> bool:
        """Reference BFS reachability (cycle-tolerant; used as fallback
        on non-DAG graphs and by the differential tests)."""
        if u == v:
            return True
        stack = [u]
        seen = {u}
        while stack:
            x = stack.pop()
            for s in self._succ[x]:
                if s == v:
                    return True
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return False

    def _independent_bfs(self, names: Iterable[str]) -> bool:
        """Reference BFS pairwise-independence check (cycle-tolerant)."""
        group = list(names)
        group_set = set(group)
        if len(group_set) != len(group):
            return False
        for start in group:
            stack = list(self._succ[start])
            seen: set[str] = set()
            while stack:
                x = stack.pop()
                if x in seen:
                    continue
                seen.add(x)
                if x in group_set:
                    return False
                stack.extend(self._succ[x])
        return True

    def reachable(self, u: str, v: str) -> bool:
        """Is there a directed path from ``u`` to ``v``?"""
        if u == v:
            return True
        try:
            masks, index = self.descendant_masks()
        except GraphError:  # cyclic graph (pre-validation): BFS still works
            return self._reachable_bfs(u, v)
        iv = index.get(v)
        if iv is None:
            return False
        return bool((masks[index[u]] >> iv) & 1)

    def independent(self, names: Iterable[str]) -> bool:
        """True if no pair of ``names`` is connected by a directed path.

        This is the Alg. 2 precondition for grouping a window of
        operators into one stage.
        """
        group = list(names)
        group_set = set(group)
        if len(group_set) != len(group):
            return False
        try:
            masks, index = self.descendant_masks()
        except GraphError:  # cyclic graph (pre-validation): BFS still works
            return self._independent_bfs(group)
        group_mask = 0
        for v in group:
            group_mask |= 1 << index[v]
        for v in group:
            if masks[index[v]] & group_mask:
                return False
        return True

    def subgraph(self, names: Iterable[str]) -> "OpGraph":
        """Induced subgraph on ``names`` (edges with both endpoints kept)."""
        keep = set(names)
        sub = OpGraph()
        for n in self._ops:
            if n in keep:
                sub.add_operator(self._ops[n])
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        return sub

    def copy(self) -> "OpGraph":
        return self.subgraph(self._ops)

    def map_costs(
        self,
        vertex: Callable[[Operator], float] | None = None,
        edge: Callable[[str, str, float], float] | None = None,
    ) -> "OpGraph":
        """Return a copy with re-derived vertex and/or edge weights."""
        out = OpGraph()
        for op in self._ops.values():
            new_cost = vertex(op) if vertex is not None else op.cost
            out.add_operator(
                Operator(
                    op.name,
                    cost=new_cost,
                    occupancy=op.occupancy,
                    output_bytes=op.output_bytes,
                    kind=op.kind,
                    attrs=op.attrs,
                )
            )
        for u, v, w in self.edges():
            out.add_edge(u, v, edge(u, v, w) if edge is not None else w)
        return out

    def total_cost(self) -> float:
        """Sum of all vertex weights — the sequential single-GPU latency
        lower bound used by the Sequential baseline."""
        return sum(op.cost for op in self._ops.values())

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OpGraph(|V|={len(self)}, |E|={self.num_edges})"

    @classmethod
    def from_edges(
        cls,
        costs: Mapping[str, float],
        edges: Sequence[tuple[str, str, float]] | Sequence[tuple[str, str]],
        occupancy: Mapping[str, float] | float = 1.0,
    ) -> "OpGraph":
        """Compact constructor used heavily by tests and worked examples."""
        g = cls()
        for name, cost in costs.items():
            occ = occupancy if isinstance(occupancy, float) else occupancy.get(name, 1.0)
            g.add_operator(Operator(name, cost=cost, occupancy=occ))
        for e in edges:
            if len(e) == 2:
                u, v = e  # type: ignore[misc]
                g.add_edge(u, v, 0.0)
            else:
                u, v, w = e  # type: ignore[misc]
                g.add_edge(u, v, w)
        return g
