"""Latency lower bounds — how far from optimal can a schedule be?

The scheduling problem is NP-hard (Section III-B), so exact optima are
unavailable beyond toy sizes; these bounds certify schedule quality
instead.  For any feasible schedule on ``M`` GPUs:

* **critical-path bound** — the computation-only longest path cannot be
  compressed by any placement (transfers can be avoided by
  co-location, computation cannot);
* **work bound** — total solo work spread perfectly over ``M`` GPUs at
  the best available speed;
* **bottleneck bound** — the single largest operator.

``latency_lower_bound`` is their maximum; ``optimality_gap`` reports
``latency / bound`` (1.0 = provably optimal).  The property tests hold
every scheduler above these bounds, and the random-DAG studies use the
gap to show HIOS-LP sits within a small factor of optimal at 4 GPUs.
"""

from __future__ import annotations

from ..costmodel.profile import CostProfile
from .priority import critical_path_length
from .result import ScheduleResult

__all__ = [
    "critical_path_bound",
    "work_bound",
    "bottleneck_bound",
    "latency_lower_bound",
    "optimality_gap",
]


def critical_path_bound(profile: CostProfile) -> float:
    """Longest chain of computation, ignoring transfers, at the fastest
    GPU's speed — unavoidable under any schedule."""
    fastest = max(profile.gpu_speed(g) for g in range(profile.num_gpus))
    return critical_path_length(profile.graph, include_transfers=False) / fastest


def work_bound(profile: CostProfile) -> float:
    """Total solo work divided by the fleet's aggregate speed.

    Concurrency within one GPU never reduces *work* under the
    saturation model's ``t(S) >= max_v t(v)`` and per-GPU rate <= 1
    invariants, so no schedule finishes earlier than this.  (With an
    idealized `MaxConcurrencyModel` a GPU can exceed unit rate and the
    bound degrades to a heuristic — the property tests therefore apply
    it only under saturation-style models.)
    """
    total_speed = sum(profile.gpu_speed(g) for g in range(profile.num_gpus))
    work = sum(
        op.cost * min(1.0, op.occupancy) for op in profile.graph.operators()
    )
    return work / total_speed


def bottleneck_bound(profile: CostProfile) -> float:
    """The largest single operator at the fastest GPU's speed."""
    fastest = max(profile.gpu_speed(g) for g in range(profile.num_gpus))
    if not len(profile.graph):
        return 0.0
    return max(op.cost for op in profile.graph.operators()) / fastest


def latency_lower_bound(profile: CostProfile) -> float:
    """Best (largest) of the three bounds."""
    return max(
        critical_path_bound(profile),
        work_bound(profile),
        bottleneck_bound(profile),
    )


def optimality_gap(profile: CostProfile, result: ScheduleResult) -> float:
    """``latency / lower bound`` — 1.0 means provably optimal; values
    near 1 certify near-optimality, large values are inconclusive (the
    bound, not the schedule, may be loose)."""
    bound = latency_lower_bound(profile)
    if bound <= 0:
        return 1.0
    return result.latency / bound
