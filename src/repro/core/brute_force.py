"""Exhaustive reference scheduler for tiny graphs.

Enumerates every operator-to-GPU assignment and, per assignment, every
per-GPU ordered stage partition that respects local dependencies, then
evaluates each complete schedule (infeasible cross-GPU interleavings
are rejected by the evaluator's cycle check).  Exponential — intended
only for cross-checking HIOS-LP / HIOS-MR / IOS on graphs of at most a
dozen operators in the test suite.
"""

from __future__ import annotations

import time
from itertools import combinations, product

from ..costmodel.profile import CostProfile
from .evaluator import evaluate_latency
from .result import ScheduleResult
from .schedule import Schedule, ScheduleError, Stage

__all__ = ["schedule_brute_force"]


def _enumerate_gpu_partitions(
    profile: CostProfile, gpu: int, ops: list[str]
) -> list[list[Stage]]:
    """All ordered stage partitions of ``ops`` on one GPU.

    Each stage must be an independent set, and the stage order must be
    a topological order of the dependencies *among these operators*
    (cross-GPU dependencies are checked later by the evaluator)."""
    graph = profile.graph
    results: list[list[Stage]] = []

    def rec(remaining: set[str], acc: list[Stage]) -> None:
        if not remaining:
            results.append(list(acc))
            return
        ready = [
            v
            for v in sorted(remaining)
            if not any(u in remaining for u in graph.predecessors(v))
        ]
        for size in range(1, len(ready) + 1):
            if not profile.stage_width_ok(size):
                break
            for stage_ops in combinations(ready, size):
                if len(stage_ops) > 1 and not graph.independent(stage_ops):
                    continue
                acc.append(Stage(gpu, tuple(stage_ops)))
                rec(remaining - set(stage_ops), acc)
                acc.pop()

    rec(set(ops), [])
    return results


def schedule_brute_force(profile: CostProfile, max_ops: int = 10) -> ScheduleResult:
    """True optimal schedule by exhaustive search (tiny graphs only)."""
    t0 = time.perf_counter()
    graph = profile.graph
    names = graph.names
    if len(names) > max_ops:
        raise ValueError(f"brute force limited to {max_ops} operators, got {len(names)}")
    best_latency = float("inf")
    best_schedule: Schedule | None = None
    M = profile.num_gpus
    for combo in product(range(M), repeat=len(names)):
        assignment = dict(zip(names, combo))
        per_gpu_ops: dict[int, list[str]] = {}
        for v, g in assignment.items():
            per_gpu_ops.setdefault(g, []).append(v)
        partition_lists = [
            _enumerate_gpu_partitions(profile, g, ops)
            for g, ops in sorted(per_gpu_ops.items())
        ]
        for parts in product(*partition_lists):
            schedule = Schedule(M)
            try:
                for gpu_stages in parts:
                    for st in gpu_stages:
                        schedule.append_stage(st)
                lat = evaluate_latency(profile, schedule, validate=True)
            except ScheduleError:
                continue
            if lat < best_latency:
                best_latency = lat
                best_schedule = schedule
    if best_schedule is None:
        raise RuntimeError("no feasible schedule found")
    return ScheduleResult(
        algorithm="brute-force",
        schedule=best_schedule,
        latency=best_latency,
        scheduling_time=time.perf_counter() - t0,
    )
