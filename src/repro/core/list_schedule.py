"""Temporal operator scheduling (Alg. 1, lines 10-13).

Given a (possibly partial) operator-to-GPU assignment and a priority
order, place each operator at the earliest available start time on its
GPU: after the GPU's previously placed operator and after every already
assigned predecessor — plus the transfer time when the predecessor
lives on another GPU.  Predecessors that are still unassigned are
ignored; because the priority order is topological and the full
assignment is re-scheduled after every HIOS-LP iteration, the final
schedule always respects every dependency.

Under the sender-blocking communication model (the default, see
:class:`~repro.costmodel.profile.CostProfile`), an operator's outgoing
cross-GPU transfers are issued as serialized blocking sends right after
it finishes, occupying its GPU before the next operator may start —
the same semantics the stage evaluator charges, so the latency
HIOS-LP optimizes during GPU selection agrees with the final measure.

:func:`list_schedule_latency` is the *reference* (from-scratch)
implementation; the scheduler inner loops default to the bit-identical
incremental version in :class:`repro.core.fasteval.PrefixReplayer`,
which checkpoints the candidate-invariant prefix and replays only the
suffix.  The differential tests in ``tests/core/test_fasteval.py``
hold the two to exact float equality — any change to the simulation
semantics here must be mirrored there.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .graph import OpGraph
from .schedule import Schedule, Stage

__all__ = ["list_schedule_latency", "build_singleton_schedule"]


def list_schedule_latency(
    graph: OpGraph,
    assignment: Mapping[str, int],
    order: Sequence[str],
    num_gpus: int,
    send_blocking: bool = True,
    gpu_speeds: Sequence[float] | None = None,
) -> float:
    """Latency of list-scheduling ``order`` under ``assignment``.

    ``order`` must contain exactly the assigned operators, in a
    topological order of the full graph (descending priority
    indicators).  Runs in ``O(|V| + |E|)``.
    """
    finish: dict[str, float] = {}
    arrival: dict[tuple[str, str], float] = {}
    gpu_free = [0.0] * num_gpus
    latency = 0.0
    for v in order:
        g = assignment[v]
        start = gpu_free[g]
        for u in graph.predecessors(v):
            gu = assignment.get(u)
            if gu is None:
                continue  # still unscheduled in this HIOS-LP iteration
            if gu == g:
                ready = finish[u]
            elif send_blocking:
                ready = arrival[(u, v)]
            else:
                ready = finish[u] + graph.transfer(u, v)
            if ready > start:
                start = ready
        speed = 1.0 if gpu_speeds is None else gpu_speeds[g]
        end = start + graph.cost(v) / speed
        finish[v] = end
        if send_blocking:
            # issue this operator's cross-GPU sends as serialized
            # blocking sends, in deterministic consumer-name order
            # (matching the evaluator's send order)
            cursor = end
            for s in sorted(graph.successors(v)):
                gs = assignment.get(s)
                if gs is None or gs == g:
                    continue
                cursor += graph.transfer(v, s)
                arrival[(v, s)] = cursor
            gpu_free[g] = cursor
            if cursor > latency:
                latency = cursor
        else:
            gpu_free[g] = end
        if end > latency:
            latency = end
    return latency


def build_singleton_schedule(
    assignment: Mapping[str, int],
    order: Sequence[str],
    num_gpus: int,
) -> Schedule:
    """Materialize an assignment as a schedule of singleton stages, each
    GPU's stages ordered by the (topological) priority order."""
    sched = Schedule(num_gpus)
    for v in order:
        sched.append_stage(Stage(assignment[v], (v,)))
    return sched
