"""Computation-graph (de)serialization.

Profiling a model on a platform is the expensive step of HIOS's
pipeline (the paper bills it at 36 measured repetitions per operator
and candidate group), so priced graphs are worth persisting.  The JSON
document stores every :class:`~repro.core.graph.Operator` field plus
the weighted edge list; round-tripping is exact up to float formatting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .graph import GraphError, Operator, OpGraph

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

_FORMAT = "repro.opgraph/v1"


def graph_to_dict(graph: OpGraph) -> dict[str, object]:
    """Serializable document for a (typically cost-annotated) graph."""
    return {
        "format": _FORMAT,
        "operators": [
            {
                "name": op.name,
                "cost": op.cost,
                "occupancy": op.occupancy,
                "output_bytes": op.output_bytes,
                "kind": op.kind,
                "attrs": dict(op.attrs),
            }
            for op in graph.operators()
        ],
        "edges": [
            {"src": u, "dst": v, "transfer": w} for u, v, w in graph.edges()
        ],
    }


def graph_from_dict(data: Mapping[str, Any]) -> OpGraph:
    """Inverse of :func:`graph_to_dict`; validates structure and DAG-ness."""
    if data.get("format") != _FORMAT:
        raise GraphError(f"unsupported graph document format {data.get('format')!r}")
    graph = OpGraph()
    try:
        for entry in data["operators"]:
            graph.add_operator(
                Operator(
                    name=entry["name"],
                    cost=float(entry["cost"]),
                    occupancy=float(entry.get("occupancy", 1.0)),
                    output_bytes=int(entry.get("output_bytes", 0)),
                    kind=entry.get("kind", "op"),
                    attrs=entry.get("attrs", {}),
                )
            )
        for entry in data["edges"]:
            graph.add_edge(entry["src"], entry["dst"], float(entry.get("transfer", 0.0)))
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed graph document: {exc}") from exc
    graph.validate()
    return graph


def save_graph(graph: OpGraph, path: str | Path, indent: int | None = None) -> None:
    """Write a graph document to ``path`` as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=indent))


def load_graph(path: str | Path) -> OpGraph:
    """Read a graph document written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))
