"""Common result type returned by every scheduler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from .schedule import Schedule

__all__ = ["ScheduleResult"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one scheduling run.

    Attributes
    ----------
    algorithm:
        Canonical algorithm name ("hios-lp", "ios", ...).
    schedule:
        The produced schedule ``Q``.
    latency:
        Predicted end-to-end latency (ms) under the cost profile's
        analytic evaluator — the objective value the scheduler
        optimized.  Engine-measured latency is reported separately by
        the experiment drivers.
    scheduling_time:
        Wall-clock seconds the scheduler itself took (the paper's
        "time cost of scheduling optimization", Fig. 14).
    stats:
        Algorithm-specific counters (paths extracted, DP states, ...).
        Schedulers running on the incremental engine
        (:mod:`repro.core.fasteval`) additionally report ``evals``,
        ``suffix_replays``, ``window_delta_evals`` and ``cache_hits``
        (see :class:`repro.core.fasteval.EvalCounters`) plus a
        ``phase_times`` mapping of per-phase wall seconds
        (``spatial_mapping`` / ``local_search`` / ``intra_gpu``),
        surfaced by ``repro schedule --profile-sched``.
    """

    algorithm: str
    schedule: Schedule
    latency: float
    scheduling_time: float = 0.0
    stats: Mapping[str, Any] = field(default_factory=dict)
