"""CI gate for the parallel sweep engine (``repro.sweep``).

Runs a design-space-exploration slice (a reduced Fig. 9 GPU-count axis
crossed with a window-sensitivity axis, the shape real sweeps take)
three ways and enforces the engine's contract:

* **Parity** — the parallel run's payloads must be *byte-identical*
  to the serial run's (FAIL otherwise; this is the engine's core
  correctness property, not a tolerance check).
* **Scaling** — the serial/parallel speedup must reach
  ``--min-efficiency x min(jobs, cpus)``, and at ``--jobs 2`` or more
  it must strictly exceed 1.0 regardless of the CPU count: the batched
  path does strictly less work than the serial path (worker-side
  workload memo, shared spatial-mapping phase), so even a single-core
  machine must come out ahead.  Serial and parallel runs are measured
  as interleaved pairs and the gate uses the median per-pair speedup,
  which cancels machine-speed drift during the benchmark.
* **Cache** — a warm re-run over the populated cache must hit on at
  least ``--min-hit-rate`` (default 90 %) of the units, execute
  nothing, and reproduce the cold run bit-identically.
* **Cost drift** — the serial wall time, normalized by a per-machine
  calibration unit, must stay within ``--threshold`` (default 35 %) of
  the committed baseline ``benchmarks/results/BENCH_sweep_cost.json``.

Refresh the baseline after intentional performance changes with::

    PYTHONPATH=src python scripts/check_sweep_regression.py --write-baseline
"""

import argparse
import json
import os
import pathlib
import statistics
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.sweep import (  # noqa: E402
    RandomDagSpec,
    ResultCache,
    WorkUnit,
    execute_unit,
    run_units,
)

BASELINE = pathlib.Path("benchmarks/results/BENCH_sweep_cost.json")
GPU_COUNTS = (2, 4)
WINDOWS = (2, 3, 4)
INSTANCES = 3
NUM_OPS = 150


def build_units() -> list[WorkUnit]:
    """The bench slice: GPU-count axis x window-sensitivity axis.

    Per spec: the full algorithm set at the default window plus extra
    ``hios-lp`` windows.  This exercises every engine feature real
    sweeps lean on — single-GPU dedup across the GPU axis, worker-side
    workload reuse, and the shared window-independent spatial phase.
    """
    units: list[WorkUnit] = []
    for gpus in GPU_COUNTS:
        for i in range(INSTANCES):
            spec = RandomDagSpec(seed=i, num_gpus=gpus, num_ops=NUM_OPS)
            units.append(WorkUnit("sweep-bench", gpus, i, "sequential", spec))
            units.append(WorkUnit("sweep-bench", gpus, i, "ios", spec))
            units.append(WorkUnit("sweep-bench", gpus, i, "inter-mr", spec))
            units.append(WorkUnit("sweep-bench", gpus, i, "inter-lp", spec))
            units.append(
                WorkUnit("sweep-bench", gpus, i, "hios-mr", spec, (("window", 3),))
            )
            for window in WINDOWS:
                units.append(
                    WorkUnit(
                        "sweep-bench", gpus, i, "hios-lp", spec, (("window", window),)
                    )
                )
    return units


def _run(units: list[WorkUnit], jobs: int, cache_dir: str | None = None):
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return run_units(units, jobs=jobs, cache=cache)


def _calibrate(repeats: int = 3) -> float:
    """Median wall time of one fixed unit — the machine-speed yardstick.

    Also serves as the warm-up: the first schedule of a process pays
    one-time imports that must not land inside a timed sweep.
    """
    unit = WorkUnit(
        figure="calibration",
        x=NUM_OPS,
        instance=0,
        algorithm="hios-lp",
        spec=RandomDagSpec(seed=0, num_gpus=4, num_ops=NUM_OPS),
        schedule_kwargs=(("window", 3),),
    )
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        execute_unit(unit)
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def measure(jobs: int, repeats: int = 3) -> dict:
    calibration_s = _calibrate()
    units = build_units()

    serial_walls: list[float] = []
    parallel_walls: list[float] = []
    pair_speedups: list[float] = []
    serial_payloads = parallel_payloads = None
    serial_stats = parallel_stats = None
    for round_index in range(repeats):
        # alternate the in-pair order so machine-speed drift within a
        # round biases neither mode
        order = ("serial", "parallel") if round_index % 2 == 0 else ("parallel", "serial")
        for mode in order:
            if mode == "serial":
                serial_payloads, serial_stats = _run(units, jobs=1)
                serial_walls.append(serial_stats.wall_s)
            else:
                parallel_payloads, parallel_stats = _run(units, jobs=jobs)
                parallel_walls.append(parallel_stats.wall_s)
        pair_speedups.append(serial_walls[-1] / parallel_walls[-1])
    speedup = statistics.median(pair_speedups)

    with tempfile.TemporaryDirectory(prefix="sweep-bench-cache-") as cache_dir:
        cold_payloads, cold_stats = _run(units, jobs=jobs, cache_dir=cache_dir)
        warm_payloads, warm_stats = _run(units, jobs=jobs, cache_dir=cache_dir)
        cache_entries = ResultCache(cache_dir).stats()["entries"]

    representatives = serial_stats.total - serial_stats.deduped
    cpus = os.cpu_count() or 1
    return {
        "bench": "design-space slice (GPU-count x window sensitivity)",
        "gpu_counts": list(GPU_COUNTS),
        "windows": list(WINDOWS),
        "num_ops": NUM_OPS,
        "instances": INSTANCES,
        "cpus": cpus,
        "jobs": jobs,
        "repeats": repeats,
        "calibration_s": calibration_s,
        "units": serial_stats.total,
        "representative_units": representatives,
        "serial": {
            "wall_s": min(serial_walls),
            "per_unit_s": min(serial_walls) / representatives,
        },
        "parallel": {
            "wall_s": min(parallel_walls),
            "speedup": speedup,
            "pair_speedups": pair_speedups,
            "efficiency": speedup / min(jobs, cpus),
            "batches": parallel_stats.batches,
            "worker_workload_reuses": parallel_stats.worker_workload_reuses,
        },
        "cache": {
            "cold_wall_s": cold_stats.wall_s,
            "warm_wall_s": warm_stats.wall_s,
            "warm_hit_rate": warm_stats.cache_hits / representatives,
            "warm_executed": warm_stats.executed,
            "entries": cache_entries,
        },
        "_payloads": {
            "serial": json.dumps(serial_payloads, sort_keys=True),
            "parallel": json.dumps(parallel_payloads, sort_keys=True),
            "cold": json.dumps(cold_payloads, sort_keys=True),
            "warm": json.dumps(warm_payloads, sort_keys=True),
        },
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", type=pathlib.Path, default=BASELINE)
    ap.add_argument("--write-baseline", action="store_true",
                    help="measure and (over)write the baseline file instead of gating")
    ap.add_argument("--jobs", "-j", type=int, default=0,
                    help="parallel worker count (0 = one per CPU)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="interleaved serial/parallel measurement pairs")
    ap.add_argument("--min-efficiency", type=float, default=0.5,
                    help="required speedup / min(jobs, cpus) parallel efficiency")
    ap.add_argument("--min-hit-rate", type=float, default=0.9,
                    help="required warm-cache hit rate over representative units")
    ap.add_argument("--threshold", type=float, default=0.35,
                    help="allowed fractional drift of the normalized serial wall time")
    args = ap.parse_args(argv)
    jobs = args.jobs or (os.cpu_count() or 1)

    current = measure(jobs, repeats=args.repeats)
    payloads = current.pop("_payloads")

    failures = []
    for name in ("parallel", "cold", "warm"):
        if payloads[name] != payloads["serial"]:
            failures.append(f"{name} payloads are not byte-identical to the serial run")
    print(f"parity: parallel/cold/warm vs serial "
          f"[{'FAILED' if failures else 'ok'}]")

    cpus = current["cpus"]
    floor = args.min_efficiency * min(jobs, cpus)
    if jobs >= 2:
        # the batched parallel path must strictly beat serial even on
        # one CPU: it does strictly less work than the serial path
        floor = max(floor, 1.0 + 1e-9)
    speedup = current["parallel"]["speedup"]
    print(f"scaling: speedup={speedup:.2f}x (median of "
          f"{len(current['parallel']['pair_speedups'])} pairs) at jobs={jobs} "
          f"on {cpus} CPU(s), floor={floor:.2f}x "
          f"[{'ok' if speedup >= floor else 'TOO SLOW'}]")
    if speedup < floor:
        failures.append(
            f"speedup {speedup:.2f}x below the {floor:.2f}x floor "
            f"(max({args.min_efficiency} x min(jobs={jobs}, cpus={cpus}), "
            f">1.0 at jobs>=2))"
        )

    hit_rate = current["cache"]["warm_hit_rate"]
    executed = current["cache"]["warm_executed"]
    print(f"cache: warm hit rate={hit_rate:.0%}, re-executed={executed} "
          f"[{'ok' if hit_rate >= args.min_hit_rate else 'TOO COLD'}]")
    if hit_rate < args.min_hit_rate:
        failures.append(
            f"warm-cache hit rate {hit_rate:.0%} below {args.min_hit_rate:.0%}"
        )

    if args.write_baseline:
        if failures:
            print("\nrefusing to write a baseline from a failing run:",
                  file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"ERROR: baseline {args.baseline} missing "
              "(generate with --write-baseline)", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    # normalize absolute times by the single-unit calibration: a machine
    # 2x slower on one unit is allowed a 2x slower serial sweep
    scale = current["calibration_s"] / baseline["calibration_s"]
    allowed = baseline["serial"]["wall_s"] * scale * (1.0 + args.threshold)
    wall = current["serial"]["wall_s"]
    print(f"cost drift: serial wall={wall:.2f}s allowed<={allowed:.2f}s "
          f"(baseline {baseline['serial']['wall_s']:.2f}s, scale {scale:.2f}) "
          f"[{'ok' if wall <= allowed else 'REGRESSED'}]")
    if wall > allowed:
        failures.append(
            f"serial sweep wall {wall:.2f}s exceeds allowed {allowed:.2f}s"
        )

    if failures:
        print("\nsweep regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("sweep regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
