"""CI gate for the parallel sweep engine (``repro.sweep``).

Runs a reduced Fig. 8 slice three ways and enforces the engine's
contract:

* **Parity** — the parallel run's series/std must be *bit-identical*
  to the serial run's (FAIL otherwise; this is the engine's core
  correctness property, not a tolerance check).
* **Scaling** — the serial/parallel speedup must reach
  ``--min-efficiency x min(jobs, cpus)``.  The floor scales with the
  machine: at the default 0.5 efficiency, an 8-core runner with
  ``--jobs 8`` must deliver >= 4x (the paper-figure target), while a
  single-core runner only needs the parallel path not to be a
  pathological slowdown.
* **Cache** — a warm re-run over the populated cache must hit on at
  least ``--min-hit-rate`` (default 90 %) of the units, execute
  nothing, and reproduce the cold run bit-identically.
* **Cost drift** — the serial wall time, normalized by a per-machine
  calibration unit, must stay within ``--threshold`` (default 35 %) of
  the committed baseline ``benchmarks/results/BENCH_sweep_cost.json``.

Refresh the baseline after intentional performance changes with::

    PYTHONPATH=src python scripts/check_sweep_regression.py --write-baseline
"""

import argparse
import json
import os
import pathlib
import statistics
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.config import ALGORITHM_ORDER, ExperimentConfig  # noqa: E402
from repro.experiments.simsweep import sweep_random_dags  # noqa: E402
from repro.sweep import RandomDagSpec, ResultCache, WorkUnit, execute_unit  # noqa: E402

BASELINE = pathlib.Path("benchmarks/results/BENCH_sweep_cost.json")
X_VALUES = (100, 150)
INSTANCES = 3
NUM_GPUS = 4


def _config(jobs: int, cache_dir: str | None = None) -> ExperimentConfig:
    return ExperimentConfig(
        fast=True,
        instances=INSTANCES,
        num_gpus=NUM_GPUS,
        jobs=jobs,
        use_cache=cache_dir is not None,
        cache_dir=cache_dir,
        progress=False,
    )


def _run(jobs: int, cache_dir: str | None = None):
    return sweep_random_dags(
        figure="sweep-bench",
        title="sweep-engine benchmark (reduced Fig. 8)",
        x_label="num_ops",
        x_values=X_VALUES,
        spec_factory=lambda n, seed: RandomDagSpec(
            seed=seed, num_gpus=NUM_GPUS, num_ops=int(n)
        ),
        config=_config(jobs, cache_dir),
        algorithms=ALGORITHM_ORDER,
    )


def _calibrate(repeats: int = 3) -> float:
    """Median wall time of one fixed unit — the machine-speed yardstick."""
    unit = WorkUnit(
        figure="calibration",
        x=150,
        instance=0,
        algorithm="hios-lp",
        spec=RandomDagSpec(seed=0, num_gpus=NUM_GPUS, num_ops=150),
        schedule_kwargs=(("window", 3),),
    )
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        execute_unit(unit)
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def measure(jobs: int) -> dict:
    calibration_s = _calibrate()
    serial = _run(jobs=1)
    parallel = _run(jobs=jobs)
    with tempfile.TemporaryDirectory(prefix="sweep-bench-cache-") as cache_dir:
        cold = _run(jobs=jobs, cache_dir=cache_dir)
        warm = _run(jobs=jobs, cache_dir=cache_dir)
        cache_entries = ResultCache(cache_dir).stats()["entries"]

    serial_sweep = serial.extras["sweep"]
    parallel_sweep = parallel.extras["sweep"]
    warm_sweep = warm.extras["sweep"]
    representatives = serial_sweep["total"] - serial_sweep["deduped"]
    speedup = serial_sweep["wall_s"] / parallel_sweep["wall_s"]
    cpus = os.cpu_count() or 1
    return {
        "bench": "reduced Fig. 8 slice",
        "x_values": list(X_VALUES),
        "instances": INSTANCES,
        "algorithms": list(ALGORITHM_ORDER),
        "cpus": cpus,
        "jobs": jobs,
        "calibration_s": calibration_s,
        "units": serial_sweep["total"],
        "representative_units": representatives,
        "serial": {
            "wall_s": serial_sweep["wall_s"],
            "per_unit_s": serial_sweep["wall_s"] / representatives,
        },
        "parallel": {
            "wall_s": parallel_sweep["wall_s"],
            "speedup": speedup,
            "efficiency": speedup / min(jobs, cpus),
        },
        "cache": {
            "cold_wall_s": cold.extras["sweep"]["wall_s"],
            "warm_wall_s": warm_sweep["wall_s"],
            "warm_hit_rate": warm_sweep["cache_hits"] / representatives,
            "warm_executed": warm_sweep["executed"],
            "entries": cache_entries,
        },
        "_series": {
            "serial": (serial.series, serial.extras["std"]),
            "parallel": (parallel.series, parallel.extras["std"]),
            "cold": (cold.series, cold.extras["std"]),
            "warm": (warm.series, warm.extras["std"]),
        },
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", type=pathlib.Path, default=BASELINE)
    ap.add_argument("--write-baseline", action="store_true",
                    help="measure and (over)write the baseline file instead of gating")
    ap.add_argument("--jobs", "-j", type=int, default=0,
                    help="parallel worker count (0 = one per CPU)")
    ap.add_argument("--min-efficiency", type=float, default=0.5,
                    help="required speedup / min(jobs, cpus) parallel efficiency")
    ap.add_argument("--min-hit-rate", type=float, default=0.9,
                    help="required warm-cache hit rate over representative units")
    ap.add_argument("--threshold", type=float, default=0.35,
                    help="allowed fractional drift of the normalized serial wall time")
    args = ap.parse_args(argv)
    jobs = args.jobs or (os.cpu_count() or 1)

    current = measure(jobs)
    series = current.pop("_series")

    failures = []
    for name in ("parallel", "cold", "warm"):
        if series[name] != series["serial"]:
            failures.append(f"{name} run is not bit-identical to the serial run")
    print(f"parity: parallel/cold/warm vs serial "
          f"[{'FAILED' if failures else 'ok'}]")

    cpus = current["cpus"]
    floor = args.min_efficiency * min(jobs, cpus)
    speedup = current["parallel"]["speedup"]
    print(f"scaling: speedup={speedup:.2f}x at jobs={jobs} on {cpus} CPU(s), "
          f"floor={floor:.2f}x "
          f"[{'ok' if speedup >= floor else 'TOO SLOW'}]")
    if speedup < floor:
        failures.append(
            f"speedup {speedup:.2f}x below the {floor:.2f}x floor "
            f"({args.min_efficiency} x min(jobs={jobs}, cpus={cpus}))"
        )

    hit_rate = current["cache"]["warm_hit_rate"]
    executed = current["cache"]["warm_executed"]
    print(f"cache: warm hit rate={hit_rate:.0%}, re-executed={executed} "
          f"[{'ok' if hit_rate >= args.min_hit_rate else 'TOO COLD'}]")
    if hit_rate < args.min_hit_rate:
        failures.append(
            f"warm-cache hit rate {hit_rate:.0%} below {args.min_hit_rate:.0%}"
        )

    if args.write_baseline:
        if failures:
            print("\nrefusing to write a baseline from a failing run:",
                  file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"ERROR: baseline {args.baseline} missing "
              "(generate with --write-baseline)", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    # normalize absolute times by the single-unit calibration: a machine
    # 2x slower on one unit is allowed a 2x slower serial sweep
    scale = current["calibration_s"] / baseline["calibration_s"]
    allowed = baseline["serial"]["wall_s"] * scale * (1.0 + args.threshold)
    wall = current["serial"]["wall_s"]
    print(f"cost drift: serial wall={wall:.2f}s allowed<={allowed:.2f}s "
          f"(baseline {baseline['serial']['wall_s']:.2f}s, scale {scale:.2f}) "
          f"[{'ok' if wall <= allowed else 'REGRESSED'}]")
    if wall > allowed:
        failures.append(
            f"serial sweep wall {wall:.2f}s exceeds allowed {allowed:.2f}s"
        )

    if failures:
        print("\nsweep regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("sweep regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
