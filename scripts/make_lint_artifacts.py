#!/usr/bin/env python
"""Regenerate the checked-in lint artifacts.

Writes a priced Inception-v3 graph, two schedules, one execution trace,
its Chrome ``trace_event`` export, its happens-before analysis report
and one sweep result-cache entry under ``benchmarks/results/lint/`` —
the documents CI feeds to ``repro lint`` so the JSON contracts
(``repro.opgraph/v1``, the schedule document, ``repro.trace/v1``,
``repro.chrometrace/v1``, ``repro.hbreport/v1``, ``repro.cache/v1``)
stay lint-clean as the code evolves.  Run from the repository root:

    PYTHONPATH=src python scripts/make_lint_artifacts.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.api import schedule_graph  # noqa: E402
from repro.core.graphio import graph_to_dict  # noqa: E402
from repro.experiments.realmodels import MODEL_BUILDERS, default_profiler  # noqa: E402
from repro.obs import chrome_trace_document  # noqa: E402
from repro.sanitize import ExecModel, analyze  # noqa: E402
from repro.sweep import RandomDagSpec, ResultCache, WorkUnit, execute_unit  # noqa: E402

MODEL = "inception_v3"
SIZE = 299
NUM_GPUS = 2
WINDOW = 3
ALGORITHMS = ("hios-lp", "hios-mr")
TRACED = "hios-lp"


def main() -> int:
    out = pathlib.Path("benchmarks/results/lint")
    out.mkdir(parents=True, exist_ok=True)

    profiler = default_profiler(num_gpus=NUM_GPUS)
    profile = profiler.profile(MODEL_BUILDERS[MODEL](SIZE))
    stem = f"{MODEL.removesuffix('_v3')}_{SIZE}"

    graph_path = out / f"graph_{stem}.json"
    graph_path.write_text(json.dumps(graph_to_dict(profile.graph), indent=2) + "\n")
    print(f"wrote {graph_path} ({len(profile.graph)} operators)")

    for alg in ALGORITHMS:
        result = schedule_graph(profile, alg, window=WINDOW)
        sched_path = out / f"schedule_{stem}_{alg}.json"
        sched_path.write_text(result.schedule.to_json(indent=2) + "\n")
        print(
            f"wrote {sched_path} ({result.schedule.num_stages} stages, "
            f"predicted {result.latency:.3f} ms)"
        )
        if alg == TRACED:
            trace = profiler.engine().run(profile.graph, result.schedule)
            trace_path = out / f"trace_{stem}_{alg}.json"
            trace_path.write_text(json.dumps(trace.to_dict(), indent=2) + "\n")
            print(f"wrote {trace_path} (measured {trace.latency:.3f} ms)")

            op_gpu = {
                op: result.schedule.gpu_of(op)
                for op in result.schedule.operators()
            }
            chrome_doc = chrome_trace_document(
                trace, op_gpu, process_name=f"{MODEL}@{SIZE}"
            )
            chrome_path = out / f"chrometrace_{stem}_{alg}.json"
            chrome_path.write_text(json.dumps(chrome_doc, indent=2) + "\n")
            print(
                f"wrote {chrome_path} "
                f"({len(chrome_doc['traceEvents'])} trace events)"
            )

            engine = profiler.engine()
            report = analyze(
                profile.graph,
                result.schedule,
                ExecModel.from_engine_config(engine.config),
                traces=[trace],
            )
            hb_path = out / f"hbreport_{stem}_{alg}.json"
            hb_path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
            print(
                f"wrote {hb_path} ({report.stats['events']} events, "
                f"{report.stats['edges']} edges, "
                f"{len(report.findings)} finding(s))"
            )

    # one representative sweep cache entry, written through the real cache
    # so the C0xx rules lint exactly what `repro run` persists
    unit = WorkUnit(
        figure="fig8",
        x=64,
        instance=0,
        algorithm=TRACED,
        spec=RandomDagSpec(seed=0, num_ops=64),
        schedule_kwargs=(("window", WINDOW),),
    )
    payload, meta = execute_unit(unit)
    cache = ResultCache(out / "cache")
    key = unit.key()
    cache.put(key, payload, kind=unit.kind, algorithm=unit.algorithm, meta=meta)
    cache_src = cache.path_for(key)
    cache_path = out / "cache_entry.json"
    cache_path.write_text(json.dumps(json.loads(cache_src.read_text()), indent=2) + "\n")
    for stale in sorted((out / "cache").rglob("*.json")):
        stale.unlink()
    for d in sorted((out / "cache").rglob("*"), reverse=True):
        d.rmdir()
    (out / "cache").rmdir()
    print(f"wrote {cache_path} (key {key[:12]}…, {unit.kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
