"""CI gate for the serving scenario suite (``repro serve``).

Replays every seeded scenario in :data:`repro.serve.SCENARIOS` and
compares the resulting ``repro.servereport/v1`` documents against the
committed baseline ``benchmarks/results/BENCH_serving.json``:

* FAIL if any *counter* (arrivals, admitted, completed, sheds, failed,
  retries, displaced, repairs, degraded dispatches, deadline misses)
  differs from the baseline — the simulator is a pure function of the
  config, so the comparison is exact, not statistical;
* FAIL if any latency/goodput float drifts beyond a tiny relative
  tolerance (they are deterministic too; the tolerance only absorbs
  libm differences across platforms);
* FAIL if a scenario violates its robustness invariant regardless of
  the baseline: no admitted query may end ``failed``, the gpu-loss
  scenario must actually exercise repair, displacement, re-admission
  and warm-started rescheduling (``repairs >= 1``, ``displaced >= 1``,
  ``retries >= 1``, ``warm_starts >= 1``), and the gpu-loss-recovery
  scenario must exercise the full heal path (every ``repair:G@T``
  revives its GPU, batching merges requests, elastic leases grow and
  shrink);
* FAIL if a repaired GPU in gpu-loss-recovery never serves a request
  after its repair time, or if the pool does not return to pre-failure
  steady state once healed (full-width leases, best-case latency
  matching the pre-failure best, no post-repair deadline misses);
* FAIL if any scenario's deadline-miss rate exceeds ``--max-miss-rate``
  (default 0 — the committed scenarios are tuned to meet every SLO);
* FAIL if a restarted steady-state run backed by a persistent schedule
  cache does not cut total scheduling wall time by at least
  ``--min-cache-speedup`` (warm restarts must be effectively free).

Refresh the baseline after intentional behaviour changes with::

    PYTHONPATH=src python scripts/check_serve_regression.py --write-baseline
"""

import argparse
import json
import math
import pathlib
import sys
import tempfile

from repro.serve import SCENARIOS, run_scenario
from repro.serve.scenarios import scenario_config
from repro.serve.simulator import ServeSimulator
from repro.sweep import ScheduleCache

BASELINE = pathlib.Path("benchmarks/results/BENCH_serving.json")

COUNTERS = (
    "arrivals",
    "admitted",
    "completed",
    "shed_queue_full",
    "shed_deadline",
    "failed",
    "deadline_misses",
    "retries",
    "displaced",
    "repairs",
    "degraded_dispatches",
    "revived",
    "batched",
    "elastic_grows",
    "elastic_shrinks",
    "sched_cache_hits",
    "sched_cache_misses",
    "warm_starts",
)
# sched_ms is host wall-clock and must NEVER appear here — it is not
# deterministic and is stripped from the committed baseline entirely
FLOATS = ("p50_ms", "p99_ms", "goodput_qps", "deadline_miss_rate", "makespan_ms")

# invariants checked against the *current* run, independent of baseline
INVARIANTS = {
    "gpu-loss": {"repairs": 1, "displaced": 1, "retries": 1, "warm_starts": 1},
    "burst-overload": {"degraded_dispatches": None},  # None: just > 0
    "gpu-loss-recovery": {
        "revived": 3,  # every repair:G@T spec must return its GPU to service
        "failed": 0,
        "deadline_misses": 0,
        "repairs": None,  # None: just > 0
        "displaced": None,
        "batched": None,
        "elastic_grows": None,
        "elastic_shrinks": None,
    },
}


def measure() -> dict:
    docs = {name: run_scenario(name).report.to_dict() for name in sorted(SCENARIOS)}
    for doc in docs.values():
        doc.pop("sched_ms", None)  # host wall-clock: keep it out of the artifact
    return docs


def check_cache_speedup(min_speedup: float) -> list[str]:
    """Cold-vs-warm restart of steady-state through one persistent cache."""
    cfg = scenario_config("steady-state")
    with tempfile.TemporaryDirectory() as tmp:
        cold = ServeSimulator(cfg, sched_cache=ScheduleCache(tmp)).run().report
        warm = ServeSimulator(cfg, sched_cache=ScheduleCache(tmp)).run().report
    print(
        f"  schedule-cache restart: cold {cold.sched_ms:.1f} ms -> "
        f"warm {warm.sched_ms:.1f} ms ({warm.sched_cache_hits} hit(s))"
    )
    failures: list[str] = []
    if warm.sched_cache_hits == 0 or warm.sched_cache_misses != 0:
        failures.append(
            "schedule cache: warm restart should hit for every plan "
            f"(hits={warm.sched_cache_hits}, misses={warm.sched_cache_misses})"
        )
    if warm.sched_ms * min_speedup > cold.sched_ms:
        failures.append(
            f"schedule cache: warm restart sched_ms {warm.sched_ms:.2f} is not "
            f">= {min_speedup:g}x cheaper than cold {cold.sched_ms:.2f}"
        )
    return failures


def check_recovery() -> list[str]:
    """The healed pool in gpu-loss-recovery must actually serve again.

    Uses the per-request records, not just the counters: every GPU with
    a ``repair:G@T`` spec must appear in a lease dispatched at or after
    its repair time, and once the last repair lands the pool must be
    back at pre-failure steady state — full-width leases again, the
    best post-repair latency matching the best pre-failure latency, and
    no post-repair deadline misses.
    """
    from repro.substrate.faults import FaultPlan

    res = run_scenario("gpu-loss-recovery")
    cfg = res.config
    plan = FaultPlan.from_strings(cfg.faults, seed=cfg.seed)
    failures: list[str] = []
    for rp in plan.repairs():
        served = any(
            rec.dispatched_ms is not None
            and rec.dispatched_ms >= rp.at
            and rp.gpu in rec.gpus
            for rec in res.records
        )
        if not served:
            failures.append(
                f"gpu-loss-recovery: repaired GPU {rp.gpu} never served a "
                f"request after its repair at t={rp.at:g}"
            )
    first_fail = min(f.at for f in plan.failures())
    last_repair = max(rp.at for rp in plan.repairs())
    pre = [
        r.latency_ms
        for r in res.records
        if r.status == "completed"
        and r.completed_ms is not None
        and r.completed_ms < first_fail
        and r.latency_ms is not None
    ]
    post = [
        r
        for r in res.records
        if r.status == "completed"
        and r.completed_ms is not None
        and r.completed_ms > last_repair
    ]
    if not post:
        failures.append("gpu-loss-recovery: no completions after the pool healed")
        return failures
    if any(r.deadline_met is False for r in post):
        failures.append("gpu-loss-recovery: post-repair completions missed deadlines")
    if not any(
        r.dispatched_ms is not None
        and r.dispatched_ms > last_repair
        and len(r.gpus) == cfg.gpus_per_query
        for r in res.records
    ):
        failures.append(
            "gpu-loss-recovery: no full-width lease dispatched after the pool healed"
        )
    post_lat = [r.latency_ms for r in post if r.latency_ms is not None]
    if pre and post_lat and not math.isclose(min(pre), min(post_lat), rel_tol=1e-9):
        failures.append(
            f"gpu-loss-recovery: best post-repair latency {min(post_lat):.3f} ms "
            f"did not return to the pre-failure best {min(pre):.3f} ms"
        )
    print(
        f"  gpu-loss-recovery heal check: {len(post)} completion(s) after "
        f"t={last_repair:g}, best latency {min(post_lat):.3f} ms"
        + (f" (pre-failure best {min(pre):.3f} ms)" if pre else "")
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", type=pathlib.Path, default=BASELINE)
    ap.add_argument("--write-baseline", action="store_true",
                    help="run and (over)write the baseline file instead of gating")
    ap.add_argument("--rel-tol", type=float, default=1e-9,
                    help="relative tolerance on latency/goodput floats")
    ap.add_argument("--max-miss-rate", type=float, default=0.0,
                    help="maximum allowed deadline-miss rate per scenario")
    ap.add_argument("--min-cache-speedup", type=float, default=5.0,
                    help="required cold/warm total sched_ms ratio for a "
                    "schedule-cache-backed restart (0 disables the check; "
                    "the warm floor is content-key hashing, so the gate "
                    "stays below the ~10-35x typically measured)")
    args = ap.parse_args(argv)

    current = measure()
    if args.write_baseline:
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
        return _report(current, current, args)

    if not args.baseline.exists():
        print(f"ERROR: baseline {args.baseline} missing "
              "(generate with --write-baseline)", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    return _report(baseline, current, args)


def _report(baseline: dict, current: dict, args: argparse.Namespace) -> int:
    failures: list[str] = []
    for name, cur in current.items():
        base = baseline.get(name)
        if base is None:
            failures.append(f"{name}: no baseline entry (refresh with --write-baseline)")
            continue
        diffs = [
            f"{key} {base[key]} -> {cur[key]}"
            for key in COUNTERS
            if cur.get(key) != base.get(key)
        ]
        for key in FLOATS:
            b, c = base.get(key, 0.0), cur.get(key, 0.0)
            if not math.isclose(b, c, rel_tol=args.rel_tol, abs_tol=args.rel_tol):
                diffs.append(f"{key} {b} -> {c}")
        if diffs:
            failures.append(f"{name}: drifted from baseline ({'; '.join(diffs)})")

        if cur["failed"]:
            failures.append(f"{name}: {cur['failed']} admitted request(s) failed")
        if cur["deadline_miss_rate"] > args.max_miss_rate:
            failures.append(
                f"{name}: deadline-miss rate {cur['deadline_miss_rate']:.3f} "
                f"exceeds {args.max_miss_rate:.3f}"
            )
        for key, want in INVARIANTS.get(name, {}).items():
            ok = cur[key] > 0 if want is None else cur[key] == want
            if not ok:
                failures.append(
                    f"{name}: {key}={cur[key]} does not exercise the scenario "
                    f"(expected {'> 0' if want is None else want})"
                )
        print(
            f"  {name}: completed {cur['completed']}/{cur['arrivals']}  "
            f"failed {cur['failed']}  repairs {cur['repairs']}  "
            f"displaced {cur['displaced']}  p99 {cur['p99_ms']:.2f} ms  "
            f"goodput {cur['goodput_qps']:.2f} qps"
        )
    failures.extend(check_recovery())
    if args.min_cache_speedup > 0:
        failures.extend(check_cache_speedup(args.min_cache_speedup))
    if failures:
        print("\nserving regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("serving regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
