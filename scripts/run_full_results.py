"""Regenerate every paper figure at 10 instances/point with full sweeps,
writing artifacts to benchmarks/results_full/ (used by EXPERIMENTS.md)."""
import json, pathlib, time

from repro.experiments import EXPERIMENTS, ExperimentConfig

OUT = pathlib.Path("benchmarks/results_full")
OUT.mkdir(exist_ok=True)
cfg = ExperimentConfig(fast=False, instances=10)

ORDER = ["fig1", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11",
         "fig12_inception", "fig12_nasnet", "fig13",
         "fig14_inception", "fig14_nasnet"]
for name in ORDER:
    t0 = time.time()
    result = EXPERIMENTS[name](cfg)
    text = result.to_text()
    (OUT / f"{name}.txt").write_text(text + "\n")
    (OUT / f"{name}.json").write_text(json.dumps({
        "figure": result.figure, "title": result.title,
        "x_label": result.x_label, "y_label": result.y_label,
        "x": result.x, "series": result.series, "notes": result.notes,
    }, indent=2))
    print(f"[{time.time()-t0:7.1f}s] {name} done", flush=True)
print("ALL DONE", flush=True)
