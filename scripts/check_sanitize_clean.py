"""CI gate: the checked-in artifacts must be happens-before clean.

Runs the full static analyzer (``repro.sanitize.analyze``) over every
schedule artifact under ``benchmarks/results/lint/`` — against the
committed Inception-v3 graph and, where one exists, the committed
execution trace — and the vector-clock lease checker over the timeline
of every seeded serving scenario:

* FAIL if any schedule deadlocks, races, or its committed trace is not
  a linearization of the happens-before graph;
* FAIL if any serve scenario's realized timeline violates the exclusive
  GPU-lease order (overlapping spans on one GPU);
* warnings (transfer hazards) and info findings (nondeterminism) are
  printed but do not gate — they are properties of the schedule shape,
  not defects.

The analysis model mirrors the engine configuration the artifacts were
produced with (``scripts/make_lint_artifacts.py``'s profiler).  Run
from the repository root::

    PYTHONPATH=src python scripts/check_sanitize_clean.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.graphio import graph_from_dict  # noqa: E402
from repro.core.schedule import Schedule  # noqa: E402
from repro.experiments.realmodels import default_profiler  # noqa: E402
from repro.sanitize import ExecModel, analyze, timeline_findings  # noqa: E402
from repro.serve import SCENARIOS, run_scenario  # noqa: E402
from repro.serve.report import serve_timeline  # noqa: E402
from repro.substrate.engine import ExecutionTrace  # noqa: E402

ARTIFACTS = pathlib.Path("benchmarks/results/lint")


def check_artifacts() -> list[str]:
    failures: list[str] = []
    graph_doc = json.loads((ARTIFACTS / "graph_inception_299.json").read_text())
    graph = graph_from_dict(graph_doc)
    model = ExecModel.from_engine_config(default_profiler(num_gpus=2).engine().config)

    for sched_path in sorted(ARTIFACTS.glob("schedule_*.json")):
        schedule = Schedule.from_dict(json.loads(sched_path.read_text()))
        trace_path = ARTIFACTS / sched_path.name.replace("schedule_", "trace_")
        traces = []
        if trace_path.exists():
            traces.append(
                ExecutionTrace.from_dict(json.loads(trace_path.read_text()))
            )
        report = analyze(graph, schedule, model, traces=traces)
        suffix = f" + {trace_path.name}" if traces else ""
        print(
            f"  {sched_path.name}{suffix}: "
            f"{report.stats['events']} events, {report.stats['edges']} edges, "
            f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        )
        for finding in report.findings:
            marker = "FAIL" if finding.severity == "error" else finding.severity
            print(f"    [{marker}] {finding.kind}: {finding.message}")
        failures.extend(
            f"{sched_path.name}: {f.kind}: {f.message}" for f in report.errors
        )
    return failures


def check_scenarios() -> list[str]:
    failures: list[str] = []
    for name in sorted(SCENARIOS):
        timeline, op_gpu = serve_timeline(run_scenario(name).records)
        findings = timeline_findings(timeline, op_gpu)
        print(
            f"  scenario {name}: {len(op_gpu)} lease span(s), "
            f"{len(findings)} violation(s)"
        )
        failures.extend(f"scenario {name}: {f.message}" for f in findings)
    return failures


def main() -> int:
    print("sanitizing checked-in schedule/trace artifacts:")
    failures = check_artifacts()
    print("sanitizing serve scenario timelines:")
    failures.extend(check_scenarios())
    if failures:
        print("\nsanitize gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("sanitize gate passed: all artifacts happens-before clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
