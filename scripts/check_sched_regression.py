"""CI gate for scheduler performance (Fig. 14 path).

Measures the median pure-algorithm scheduling time of ``hios-lp`` on
the largest inception/nasnet workloads (see
``repro.experiments.sched_cost_bench``) and compares against the
committed baseline ``benchmarks/results/BENCH_scheduling_cost.json``:

* FAIL if the fast-path median, normalized by the machine-speed
  calibration ratio, regresses more than ``--threshold`` (default 25 %)
  over the baseline;
* FAIL if the fast/reference speedup on any workload drops below
  ``--min-speedup`` (default 3x) — this check needs no normalization,
  both modes run on the measuring machine;
* FAIL if replaying a schedule from the persistent schedule cache
  (``repro.schedcache/v1``) is not at least ``--min-cache-speedup``
  cheaper than computing it, or does not reproduce the schedule and
  latency bit-identically.

Refresh the baseline after intentional performance changes with::

    PYTHONPATH=src python scripts/check_sched_regression.py --write-baseline
"""

import argparse
import json
import pathlib
import sys
import tempfile
import time

from repro.experiments.realmodels import MODEL_BUILDERS, default_profiler
from repro.experiments.sched_cost_bench import measure
from repro.sweep import ScheduleCache, cached_schedule

BASELINE = pathlib.Path("benchmarks/results/BENCH_scheduling_cost.json")


def check_schedule_cache(min_speedup: float) -> list[str]:
    """Cold-vs-warm ``cached_schedule`` on the larger headline workload."""
    profile = default_profiler().profile(MODEL_BUILDERS["inception_v3"](1024))
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        cache = ScheduleCache(tmp)
        t0 = time.perf_counter()
        cold, hit0 = cached_schedule(profile, "hios-lp", cache=cache, window=3)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm, hit1 = cached_schedule(profile, "hios-lp", cache=cache, window=3)
        warm_s = time.perf_counter() - t0
    print(f"  schedule-cache: cold {cold_s * 1000:.1f} ms -> "
          f"warm {warm_s * 1000:.1f} ms")
    if hit0 or not hit1:
        failures.append(
            f"schedule cache: expected miss-then-hit, got {hit0} then {hit1}"
        )
    if warm.schedule != cold.schedule or warm.latency != cold.latency:
        failures.append(
            "schedule cache: warm replay is not bit-identical to the cold run"
        )
    if warm_s * min_speedup > cold_s:
        failures.append(
            f"schedule cache: warm replay {warm_s * 1000:.1f} ms is not "
            f">= {min_speedup:g}x cheaper than cold {cold_s * 1000:.1f} ms"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", type=pathlib.Path, default=BASELINE)
    ap.add_argument("--write-baseline", action="store_true",
                    help="measure and (over)write the baseline file instead of gating")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional regression of the normalized fast median")
    ap.add_argument("--min-speedup", type=float, default=3.0,
                    help="required fast-vs-reference median speedup per workload")
    ap.add_argument("--min-cache-speedup", type=float, default=5.0,
                    help="required cold/warm speedup of a schedule-cache "
                    "replay (0 disables the check)")
    ap.add_argument("--repeats", type=int, default=5)
    args = ap.parse_args(argv)

    current = measure(repeats=args.repeats)
    if args.write_baseline:
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
        _report(current, current, args)
        return 0

    if not args.baseline.exists():
        print(f"ERROR: baseline {args.baseline} missing "
              "(generate with --write-baseline)", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    return _report(baseline, current, args)


def _report(baseline: dict, current: dict, args: argparse.Namespace) -> int:
    # normalize the baseline's absolute times to this machine's speed:
    # a machine 2x slower on the calibration workload is allowed 2x
    # slower scheduling times
    scale = current["calibration_s"] / baseline["calibration_s"]
    print(f"calibration: baseline={baseline['calibration_s']:.3f}s "
          f"current={current['calibration_s']:.3f}s scale={scale:.2f}")
    failures = []
    for name, cur in current["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            print(f"  {name}: no baseline entry, skipping")
            continue
        allowed = base["fast_median_s"] * scale * (1.0 + args.threshold)
        speedup = cur["reference_median_s"] / cur["fast_median_s"]
        status = "ok"
        if cur["fast_median_s"] > allowed:
            status = "REGRESSED"
            failures.append(
                f"{name}: fast median {cur['fast_median_s']:.3f}s exceeds "
                f"allowed {allowed:.3f}s "
                f"(baseline {base['fast_median_s']:.3f}s, scale {scale:.2f})"
            )
        if speedup < args.min_speedup:
            status = "TOO SLOW vs reference"
            failures.append(
                f"{name}: fast/reference speedup {speedup:.2f}x "
                f"below required {args.min_speedup:.2f}x"
            )
        print(f"  {name}: fast={cur['fast_median_s']:.3f}s "
              f"reference={cur['reference_median_s']:.3f}s "
              f"speedup={speedup:.2f}x allowed<={allowed:.3f}s [{status}]")
    if args.min_cache_speedup > 0:
        failures.extend(check_schedule_cache(args.min_cache_speedup))
    if failures:
        print("\nscheduling-time regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("scheduling-time regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
