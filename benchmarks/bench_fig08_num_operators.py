"""Fig. 8 bench — latency vs number of operators (six algorithms)."""

from conftest import run_once
from repro.experiments import EXPERIMENTS, default_config


def test_fig08_num_operators(benchmark, record_series):
    result = run_once(benchmark, EXPERIMENTS["fig8"], default_config())
    record_series(result)
    lp = result.speedup("sequential", "hios-lp")
    assert all(s > 1.7 for s in lp), "HIOS-LP holds ~2x across model sizes"
    ios = result.speedup("sequential", "ios")
    assert all(l > i for l, i in zip(lp, ios))
    # Alg. 2's contribution on top of the inter-GPU mappings
    intra_lp = [
        (a - b) / a
        for a, b in zip(result.series["inter-lp"], result.series["hios-lp"])
    ]
    intra_mr = [
        (a - b) / a
        for a, b in zip(result.series["inter-mr"], result.series["hios-mr"])
    ]
    assert all(v >= -1e-9 for v in intra_lp + intra_mr)
