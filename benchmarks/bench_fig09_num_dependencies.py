"""Fig. 9 bench — latency vs dependency count."""

from conftest import run_once
from repro.experiments import EXPERIMENTS, default_config


def test_fig09_num_dependencies(benchmark, record_series):
    result = run_once(benchmark, EXPERIMENTS["fig9"], default_config())
    record_series(result)
    lp = result.speedup("sequential", "hios-lp")
    mr = result.speedup("sequential", "hios-mr")
    assert lp[0] > lp[-1], "denser graphs must reduce HIOS-LP's speedup"
    assert mr[0] > mr[-1]
