"""Fig. 13 bench — gain dissection across all six algorithms."""

from conftest import run_once
from repro.experiments import EXPERIMENTS, default_config


def test_fig13_gain_analysis(benchmark, record_series):
    result = run_once(benchmark, EXPERIMENTS["fig13"], default_config())
    record_series(result)
    for label in result.x:
        if "(large)" in label:
            # at large inputs inter-GPU parallelism dominates:
            # HIOS-LP clearly beats the single-GPU optimum (IOS)
            assert result.value("hios-lp", label) < result.value("ios", label)
            # and the inter-GPU LP mapping alone captures most of it
            seq = result.value("sequential", label)
            full = seq - result.value("hios-lp", label)
            inter = seq - result.value("inter-lp", label)
            if full > 0:
                assert inter / full > 0.7
