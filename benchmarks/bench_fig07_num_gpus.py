"""Fig. 7 bench — latency vs number of GPUs (six algorithms)."""

from conftest import run_once
from repro.experiments import EXPERIMENTS, default_config


def test_fig07_num_gpus(benchmark, record_series):
    result = run_once(benchmark, EXPERIMENTS["fig7"], default_config())
    record_series(result)
    lp = result.speedup("sequential", "hios-lp")
    mr = result.speedup("sequential", "hios-mr")
    assert lp[-1] > 2.5, "HIOS-LP must scale with GPU count"
    assert max(mr) < 2.0, "HIOS-MR plateaus (paper: <= ~1.5)"
    assert lp[result.x.index(4)] / mr[result.x.index(4)] > 1.2
