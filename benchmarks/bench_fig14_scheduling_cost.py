"""Fig. 14 bench — time cost of scheduling optimization."""

import pytest

from conftest import run_once
from repro.experiments import EXPERIMENTS, default_config


@pytest.mark.parametrize("model", ["inception", "nasnet"])
def test_fig14(benchmark, record_series, model):
    result = run_once(benchmark, EXPERIMENTS[f"fig14_{model}"], default_config())
    record_series(result, filename=f"fig14_{model}")
    # IOS's profiling bill grows faster with input size than HIOS-LP's
    ios_growth = result.series["ios"][-1] / result.series["ios"][0]
    lp_growth = result.series["hios-lp"][-1] / result.series["hios-lp"][0]
    assert result.series["ios"][-1] > result.series["hios-lp"][-1]
    assert ios_growth > lp_growth * 0.9
