"""Fig. 14 bench — time cost of scheduling optimization.

Also checks the incremental evaluation engine's headline claim: the
``hios-lp`` scheduler itself runs >= 2x faster than the retained
reference implementation on the largest inception/nasnet workloads
(same schedules bit for bit — see ``tests/core/test_fasteval.py``),
and stays within the committed ``BENCH_scheduling_cost.json`` budget.
"""

import json
import pathlib

import pytest

from conftest import RESULTS_DIR, run_once
from repro.experiments import EXPERIMENTS, default_config
from repro.experiments.sched_cost_bench import measure

BASELINE = pathlib.Path(RESULTS_DIR) / "BENCH_scheduling_cost.json"


@pytest.mark.parametrize("model", ["inception", "nasnet"])
def test_fig14(benchmark, record_series, model):
    result = run_once(benchmark, EXPERIMENTS[f"fig14_{model}"], default_config())
    record_series(result, filename=f"fig14_{model}")
    # IOS's profiling bill grows faster with input size than HIOS-LP's
    ios_growth = result.series["ios"][-1] / result.series["ios"][0]
    lp_growth = result.series["hios-lp"][-1] / result.series["hios-lp"][0]
    assert result.series["ios"][-1] > result.series["hios-lp"][-1]
    assert ios_growth > lp_growth * 0.9


def test_scheduling_speedup_vs_baseline(benchmark, capsys):
    current = run_once(benchmark, measure)
    baseline = json.loads(BASELINE.read_text())
    scale = current["calibration_s"] / baseline["calibration_s"]
    with capsys.disabled():
        print()
        for name, cur in current["workloads"].items():
            speedup = cur["reference_median_s"] / cur["fast_median_s"]
            print(
                f"{name}: fast={cur['fast_median_s'] * 1000:.1f}ms "
                f"reference={cur['reference_median_s'] * 1000:.1f}ms "
                f"speedup={speedup:.2f}x"
            )
    for name, cur in current["workloads"].items():
        # >= 2x vs the from-scratch reference loops (machine-independent)
        assert cur["reference_median_s"] / cur["fast_median_s"] >= 2.0, name
        # and no regression beyond 25% vs the committed, rescaled baseline
        base = baseline["workloads"][name]
        assert cur["fast_median_s"] <= base["fast_median_s"] * scale * 1.25, name
