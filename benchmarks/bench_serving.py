"""SLO metrics of the online serving simulator across its scenarios.

Not a paper figure — this quantifies the serving layer built on top of
the per-query HIOS schedules: for each seeded scenario of
:data:`repro.serve.SCENARIOS` we report completion rate, tail latency
and goodput.  The headline claims (mirrored by the scenario tests and
the ``check_serve_regression.py`` CI gate):

* ``steady-state`` — everything admitted completes on time;
* ``burst-overload`` — admission control + graceful degradation absorb
  a scripted burst with zero deadline misses among completions;
* ``gpu-loss`` — two pool GPUs fail mid-run, yet cascading repair and
  displacement/re-admission finish every admitted query (``failed 0``).
"""

from conftest import run_once
from repro.experiments.reporting import SeriesResult
from repro.serve import SCENARIOS, run_scenario


def test_serving_scenarios(benchmark, record_series):
    names = sorted(SCENARIOS)

    def run():
        series = {
            "completed": [],
            "shed": [],
            "failed": [],
            "p99 ms": [],
            "goodput qps": [],
        }
        for name in names:
            report = run_scenario(name).report
            series["completed"].append(float(report.completed))
            series["shed"].append(
                float(report.shed_queue_full + report.shed_deadline)
            )
            series["failed"].append(float(report.failed))
            series["p99 ms"].append(report.p99_ms)
            series["goodput qps"].append(report.goodput_qps)
        return SeriesResult(
            figure="serving",
            title="online serving scenarios (4-GPU pool, mixed tenants)",
            x_label="scenario",
            y_label="requests / ms / qps",
            x=list(names),
            series=series,
            notes=(
                "seeded, bit-reproducible scenarios from repro.serve; "
                "gpu-loss injects fail:1@178 and fail:0@184 into in-flight "
                "leases and still completes every admitted query via "
                "cascading repair and re-admission."
            ),
        )

    result = run_once(benchmark, run)
    record_series(result)
    # the robustness contract: no scenario loses admitted work
    for name in names:
        assert result.value("failed", name) == 0.0
    # gpu-loss must actually complete everything it admitted
    gpu_loss = run_scenario("gpu-loss").report
    assert gpu_loss.completed == gpu_loss.admitted
