"""Fig. 2 bench — transfer/computation ratio on three platforms."""

from conftest import run_once
from repro.experiments import EXPERIMENTS


def test_fig02_comm_ratio(benchmark, record_series):
    result = run_once(benchmark, EXPERIMENTS["fig2"])
    record_series(result)
    nvlink = result.series["dual-A40 (NVLink)"]
    pcie = result.series["dual-V100S (PCIe Gen3)"]
    assert all(p > n for n, p in zip(nvlink, pcie))
