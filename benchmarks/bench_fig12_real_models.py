"""Fig. 12 bench — engine-measured latency of Inception-v3 and NASNet."""

import pytest

from conftest import run_once
from repro.experiments import EXPERIMENTS, default_config


@pytest.mark.parametrize("model", ["inception", "nasnet"])
def test_fig12(benchmark, record_series, model):
    result = run_once(benchmark, EXPERIMENTS[f"fig12_{model}"], default_config())
    record_series(result, filename=f"fig12_{model}")
    largest = result.x[-1]
    assert result.value("hios-lp", largest) < result.value("sequential", largest)
    assert result.value("hios-lp", largest) < result.value("ios", largest)
    assert result.value("hios-lp", largest) < result.value("hios-mr", largest)
