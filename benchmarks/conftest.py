"""Shared helpers for the per-figure benchmark harness.

Every benchmark runs one experiment driver exactly once under
pytest-benchmark (rounds=1 — the drivers already average over random
instances internally), prints the reproduced table, and writes it to
``benchmarks/results/<figure>.txt`` so EXPERIMENTS.md can reference the
artifacts.  Set ``REPRO_FULL=1`` for the paper's full configuration
(30 instances per point, full sweeps).

The drivers run through the :mod:`repro.sweep` engine, so the
environment knobs it reads apply here too: ``REPRO_JOBS=8`` fans each
figure over worker processes, ``REPRO_CACHE=1`` (with optional
``REPRO_CACHE_DIR``) reuses cached unit results across runs, and
``REPRO_PROGRESS=1`` streams progress lines — all without changing the
recorded numbers (serial, parallel and cache-warm runs are
bit-identical; see ``docs/performance.md``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_series(results_dir, capsys):
    """Returns a callback that prints + persists a SeriesResult."""

    def _record(result, filename: str | None = None):
        text = result.to_text()
        with capsys.disabled():
            print(f"\n{text}\n")
        stem = filename or result.figure
        (results_dir / f"{stem}.txt").write_text(text + "\n")
        (results_dir / f"{stem}.json").write_text(
            json.dumps(
                {
                    "figure": result.figure,
                    "title": result.title,
                    "x_label": result.x_label,
                    "y_label": result.y_label,
                    "x": result.x,
                    "series": result.series,
                    "notes": result.notes,
                },
                indent=2,
            )
        )
        return result

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (drivers self-average)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
