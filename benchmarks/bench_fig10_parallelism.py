"""Fig. 10 bench — latency vs degree of model parallelism (layers)."""

from conftest import run_once
from repro.experiments import EXPERIMENTS, default_config


def test_fig10_parallelism(benchmark, record_series):
    result = run_once(benchmark, EXPERIMENTS["fig10"], default_config())
    record_series(result)
    seq = result.series["sequential"]
    lp = result.series["hios-lp"]
    # single-GPU latency flat (~same total work), HIOS-LP adapts:
    # fewer layers (more parallelism) must not be slower than most layers
    assert max(seq) / min(seq) < 1.15
    assert lp[0] <= lp[-1] * 1.05, "HIOS-LP exploits wider models"
