"""Ablation benches for the design choices called out in DESIGN.md.

Not paper figures — these quantify the knobs behind the reproduction:

* ``send_blocking`` — the sender-side communication model that makes
  Figs. 7-11's shapes reproducible (vs the idealized pure-delay model);
* Alg. 2 window size ``w``;
* IOS beam width (pruning aggressiveness vs schedule quality);
* the occupancy saturation threshold ``t_sat`` calibration.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.core import schedule_graph
from repro.experiments import default_config
from repro.experiments.reporting import SeriesResult
from repro.models import random_dag_profile


def _mean(alg, seeds, make_profile_fn, **kwargs):
    return float(
        np.mean(
            [schedule_graph(make_profile_fn(s), alg, **kwargs).latency for s in seeds]
        )
    )


def test_ablation_send_blocking(benchmark, record_series):
    """Without sender blocking, transfers overlap perfectly and HIOS-MR
    scales almost like HIOS-LP — the idealized model the paper's
    numbers rule out."""
    cfg = default_config()
    seeds = range(cfg.instances)

    def run():
        series = {"hios-lp": [], "hios-mr": [], "sequential": []}
        x = []
        for blocking in (True, False):
            x.append("blocking" if blocking else "pure-delay")
            for alg in series:
                series[alg].append(
                    _mean(
                        alg,
                        seeds,
                        lambda s: _with_blocking(random_dag_profile(seed=s), blocking),
                    )
                )
        return SeriesResult(
            figure="ablation_blocking",
            title="sender-blocking vs pure-delay communication (200 ops, 4 GPUs)",
            x_label="comm model",
            y_label="latency (ms)",
            x=x,
            series=series,
        )

    result = run_once(benchmark, run)
    record_series(result)
    # pure-delay flatters both HIOS variants
    assert result.value("hios-lp", "pure-delay") < result.value("hios-lp", "blocking")
    assert result.value("hios-mr", "pure-delay") < result.value("hios-mr", "blocking")


def _with_blocking(profile, blocking):
    from dataclasses import replace

    return replace(profile, send_blocking=blocking)


def test_ablation_window_size(benchmark, record_series):
    """Alg. 2 window size w: w=1 disables grouping; gains flatten fast."""
    cfg = default_config()
    seeds = range(cfg.instances)
    windows = (1, 2, 3, 5, 8)

    def run():
        series = {"hios-lp": [], "hios-mr": []}
        for w in windows:
            for alg in series:
                series[alg].append(
                    _mean(alg, seeds, lambda s: random_dag_profile(seed=s), window=w)
                )
        return SeriesResult(
            figure="ablation_window",
            title="Alg. 2 max window size sweep (200 ops, 4 GPUs)",
            x_label="window",
            y_label="latency (ms)",
            x=list(windows),
            series=series,
        )

    result = run_once(benchmark, run)
    record_series(result)
    lp = result.series["hios-lp"]
    assert lp[1] <= lp[0] + 1e-9, "enabling grouping (w=2) must not hurt"


def test_ablation_ios_beam_width(benchmark, record_series):
    """IOS pruning: wider beams buy little on the random workloads."""
    cfg = default_config()
    seeds = range(cfg.instances)
    widths = (1, 2, 4, 8)

    def run():
        series = {"ios": []}
        for b in widths:
            series["ios"].append(
                _mean(
                    "ios",
                    seeds,
                    lambda s: random_dag_profile(seed=s, num_gpus=1),
                    mode="beam",
                    beam_width=b,
                )
            )
        return SeriesResult(
            figure="ablation_ios_beam",
            title="IOS beam width sweep (200 ops, 1 GPU)",
            x_label="beam_width",
            y_label="latency (ms)",
            x=list(widths),
            series=series,
        )

    result = run_once(benchmark, run)
    record_series(result)
    lat = result.series["ios"]
    # beam search is a heuristic, not monotone in width: wider beams
    # keep more states but can still commit to different packings.
    # The finding is that width barely matters on these workloads.
    assert max(lat) / min(lat) < 1.05, "beam width should be a <5% effect"


def test_ablation_saturation_threshold(benchmark, record_series):
    """t_sat controls how many operators can share a GPU profitably;
    IOS's single-GPU gain grows with it (DESIGN.md calibration)."""
    cfg = default_config()
    seeds = range(cfg.instances)
    thresholds = (1.0, 2.0, 3.0, 4.0)

    def run():
        series = {"sequential": [], "ios": []}
        for tsat in thresholds:
            for alg in series:
                series[alg].append(
                    _mean(
                        alg,
                        seeds,
                        lambda s: random_dag_profile(seed=s, saturation_ms=tsat),
                    )
                )
        return SeriesResult(
            figure="ablation_tsat",
            title="occupancy saturation threshold sweep (200 ops)",
            x_label="t_sat (ms)",
            y_label="latency (ms)",
            x=list(thresholds),
            series=series,
        )

    result = run_once(benchmark, run)
    record_series(result)
    gains = [
        s / i for s, i in zip(result.series["sequential"], result.series["ios"])
    ]
    assert gains == sorted(gains), "IOS gain grows with t_sat"


def test_ablation_heterogeneous_fleet(benchmark, record_series):
    """Extension: per-GPU speed factors.  A fleet where one GPU is 2x
    faster should beat the uniform fleet, and the schedulers must
    place the critical path on the fast device."""
    from dataclasses import replace

    cfg = default_config()
    seeds = range(cfg.instances)
    fleets = {
        "uniform 4x1.0": None,
        "one fast (2,1,1,1)": (2.0, 1.0, 1.0, 1.0),
        "two fast (2,2,1,1)": (2.0, 2.0, 1.0, 1.0),
    }

    def run():
        series = {"hios-lp": [], "hios-mr": []}
        for speeds in fleets.values():
            for alg in series:
                series[alg].append(
                    _mean(
                        alg,
                        seeds,
                        lambda s: replace(
                            random_dag_profile(seed=s), gpu_speeds=speeds
                        ),
                    )
                )
        return SeriesResult(
            figure="ablation_hetero",
            title="heterogeneous fleets (extension; 200 ops, 4 GPUs)",
            x_label="fleet",
            y_label="latency (ms)",
            x=list(fleets),
            series=series,
        )

    result = run_once(benchmark, run)
    record_series(result)
    lp = result.series["hios-lp"]
    assert lp[1] <= lp[0] + 1e-9, "a faster GPU never hurts HIOS-LP"
    assert lp[2] <= lp[1] + 1e-9


def test_ablation_local_search(benchmark, record_series):
    """Extension: operator-level local search on top of Alg. 1 —
    quantifies the headroom the greedy path mapping leaves."""
    cfg = default_config()
    seeds = range(min(cfg.instances, 5))  # local search is slower

    def run():
        series = {"hios-lp": [], "hios-lp-ls": []}
        for alg in series:
            series[alg].append(
                _mean(alg, seeds, lambda s: random_dag_profile(seed=s))
            )
        return SeriesResult(
            figure="ablation_local_search",
            title="HIOS-LP vs HIOS-LP + local search (200 ops, 4 GPUs)",
            x_label="config",
            y_label="latency (ms)",
            x=["default"],
            series=series,
        )

    result = run_once(benchmark, run)
    record_series(result)
    assert result.series["hios-lp-ls"][0] <= result.series["hios-lp"][0] + 1e-9
