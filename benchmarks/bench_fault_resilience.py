"""Latency under injected faults, with and without schedule repair.

Not a paper figure — this quantifies the resilience layer: on the
Section V random-DAG workload, one of four GPUs fail-stops mid-run.
For each scheduler we report

* ``fault-free`` — the undisturbed engine latency;
* ``repair`` — fail-stop at 40 % of the fault-free latency, then
  :func:`repro.core.repair.run_with_repair` re-schedules the unfinished
  subgraph onto the three survivors with the *same* algorithm
  (degraded-mode HIOS);
* ``seq-fallback`` — the naive recovery baseline: the unfinished
  subgraph re-runs sequentially on one surviving GPU.

The headline claim (mirrored by the acceptance test in
``tests/core/test_repair.py``): degraded-mode HIOS-LP repair beats the
sequential fallback by a wide margin, so the scheduler machinery keeps
paying off after a device loss.
"""

import numpy as np

from conftest import run_once
from repro.core import schedule_graph
from repro.core.repair import run_with_repair
from repro.experiments import default_config
from repro.experiments.reporting import SeriesResult
from repro.models import random_dag_profile
from repro.substrate import EngineConfig, FaultPlan, GpuFailure, MultiGpuEngine

ALGS = ("sequential", "ios", "hios-mr", "hios-lp")
FAIL_GPU = 1
FAIL_FRACTION = 0.4


def _engine_config(**kwargs) -> EngineConfig:
    return EngineConfig(
        launch_overhead_ms=0.0,
        launch_included_in_cost=False,
        contention_penalty=0.06,
        transfer_from_edges=True,
        **kwargs,
    )


def _scenario_latencies(seed: int, alg: str) -> tuple[float, float, float]:
    profile = random_dag_profile(seed=seed, num_ops=80, num_layers=8, num_gpus=4)
    res = schedule_graph(profile, alg)
    clean = MultiGpuEngine(_engine_config()).run(profile.graph, res.schedule)

    plan = FaultPlan([GpuFailure(gpu=FAIL_GPU, at=clean.latency * FAIL_FRACTION)], seed=seed)
    faulted_cfg = _engine_config(faults=plan)
    repaired, _ = run_with_repair(
        profile, res.schedule, config=faulted_cfg, algorithm=alg
    )
    fallback, _ = run_with_repair(
        profile, res.schedule, config=faulted_cfg, algorithm="sequential"
    )
    return clean.latency, repaired.latency, fallback.latency


def test_fault_resilience(benchmark, record_series):
    cfg = default_config()
    seeds = range(cfg.instances)

    def run():
        series = {"fault-free": [], "repair": [], "seq-fallback": []}
        for alg in ALGS:
            rows = [_scenario_latencies(s, alg) for s in seeds]
            clean, repaired, fallback = (float(np.mean(c)) for c in zip(*rows))
            series["fault-free"].append(clean)
            series["repair"].append(repaired)
            series["seq-fallback"].append(fallback)
        return SeriesResult(
            figure="fault_resilience",
            title="latency under a mid-run GPU failure (80 ops, 4 GPUs, fail 1)",
            x_label="algorithm",
            y_label="latency (ms)",
            x=list(ALGS),
            series=series,
            notes=(
                f"GPU {FAIL_GPU} fail-stops at {FAIL_FRACTION:.0%} of the "
                "fault-free latency; repair re-schedules the unfinished "
                "subgraph on the 3 survivors with the same algorithm, "
                "seq-fallback re-runs it sequentially on one survivor."
            ),
        )

    result = run_once(benchmark, run)
    record_series(result)
    # degraded-mode scheduling must beat the naive sequential fallback
    for alg in ("hios-lp", "hios-mr"):
        assert result.value("repair", alg) < result.value("seq-fallback", alg)
