"""Runtime-sanitizer overhead bench (``HIOS_SANITIZE=1``).

The TSan-style engine sanitizer cross-checks every launch/start/finish
and transfer send/recv against the precomputed happens-before graph —
an O(in-degree) dictionary probe per event.  The contract (see
``docs/linting.md``) is that a sanitized run costs **less than 2x** the
unsanitized engine wall time on the heaviest real-model workload,
nasnet@1024, so the suite can afford to leave it on by default.

Prints the measured ratio and persists it to
``benchmarks/results/BENCH_sanitize_overhead.json``.
"""

import json
import statistics
import time

from conftest import RESULTS_DIR

ROUNDS = 5
MODEL = "nasnet"
SIZE = 1024
CEILING = 2.0


def _median_wall(engine, graph, schedule, rounds=ROUNDS):
    # warmup: pays the one-time HB-graph compilation (memoized per
    # placement) so the timed rounds measure the steady state the
    # 2x contract is about
    engine.run(graph, schedule)
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        trace = engine.run(graph, schedule)
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples), trace


def measure():
    from dataclasses import replace

    from repro.core.api import schedule_graph
    from repro.experiments.realmodels import MODEL_BUILDERS, default_profiler
    from repro.substrate import MultiGpuEngine

    profiler = default_profiler(num_gpus=2)
    profile = profiler.profile(MODEL_BUILDERS[MODEL](SIZE))
    schedule = schedule_graph(profile, "hios-lp", window=3).schedule

    base_cfg = replace(profiler.engine().config, sanitize=False)
    plain, trace_plain = _median_wall(
        MultiGpuEngine(base_cfg), profile.graph, schedule
    )
    checked, trace_checked = _median_wall(
        MultiGpuEngine(replace(base_cfg, sanitize=True)),
        profile.graph,
        schedule,
    )
    assert trace_checked == trace_plain  # observation must not perturb
    return {
        "model": f"{MODEL}@{SIZE}",
        "operators": len(profile.graph),
        "rounds": ROUNDS,
        "engine_median_s": plain,
        "sanitized_median_s": checked,
        "overhead_ratio": checked / plain,
    }


def test_sanitizer_overhead_under_2x(benchmark, results_dir, capsys):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n{result['model']} ({result['operators']} operators): "
            f"engine {result['engine_median_s'] * 1000:.1f} ms, "
            f"sanitized {result['sanitized_median_s'] * 1000:.1f} ms, "
            f"ratio {result['overhead_ratio']:.2f}x (ceiling {CEILING}x)\n"
        )
    (results_dir / "BENCH_sanitize_overhead.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    assert result["overhead_ratio"] < CEILING


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(RESULTS_DIR.parent.parent / "src"))
    out = measure()
    print(json.dumps(out, indent=2))
    sys.exit(0 if out["overhead_ratio"] < CEILING else 1)
