"""Fig. 1 bench — contention vs under-utilization of concurrent convs."""

from conftest import run_once
from repro.experiments import EXPERIMENTS


def test_fig01_contention(benchmark, record_series):
    result = run_once(benchmark, EXPERIMENTS["fig1"])
    record_series(result)
    ratio = dict(zip(result.x, result.series["ratio"]))
    assert ratio[64] < 1.0 < ratio[128], "crossover must fall between 64 and 128"
