"""Fig. 11 bench — latency vs communication/computation ratio p."""

from conftest import run_once
from repro.experiments import EXPERIMENTS, default_config


def test_fig11_comm_overhead(benchmark, record_series):
    result = run_once(benchmark, EXPERIMENTS["fig11"], default_config())
    record_series(result)
    lp = result.speedup("sequential", "hios-lp")
    mr = result.speedup("sequential", "hios-mr")
    assert lp[0] > lp[-1] > 1.0
    assert mr[0] > mr[-1]
